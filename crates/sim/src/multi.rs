#![allow(clippy::needless_range_loop)]
//! The heterogeneous multi-context device: one *independent* circuit per
//! context, time-multiplexed on one fabric — the paper's motivating DPGA
//! use case ("sequentially configured as different processors in real
//! time").
//!
//! Unlike [`crate::Device`] (structurally aligned workloads with plane
//! sharing), each context here is mapped, placed and routed on its own; the
//! physical logic blocks then collect, per site, the truth tables each
//! context put there, and plane grouping happens per site across contexts.
//! Routing switches genuinely differ between contexts, so the extracted
//! configuration columns exhibit the real mixed statistics of Table 1.

use mcfpga_arch::{ArchSpec, ContextId, LutMode};
use mcfpga_config::Bitstream;
use mcfpga_lut::{AdaptiveLogicBlock, LocalSizeController, SizeControl, TruthTable};
use mcfpga_map::{map_netlist, MappedNetlist, MappedSource};
use mcfpga_netlist::Netlist;
use mcfpga_obs::Recorder;
use mcfpga_place::{lb_of_lut, place_with, AnnealOptions, Placement, PlacementProblem};
use mcfpga_route::{
    nets_from_placement, route_context_with, switch_columns, RouteOptions, RoutedContext,
    RoutingGraph, SwitchUsage,
};

use crate::device::CompileError;

/// A compiled heterogeneous device.
pub struct MultiDevice {
    arch: ArchSpec,
    ctx: ContextId,
    mapped: Vec<MappedNetlist>,
    problems: Vec<PlacementProblem>,
    placements: Vec<Placement>,
    routed: Vec<RoutedContext>,
    graph: RoutingGraph,
    usage: SwitchUsage,
    /// Physical logic blocks, indexed by grid site (row-major over the
    /// full placement grid).
    lbs: Vec<Option<AdaptiveLogicBlock>>,
    /// Per context: LUT position -> (site index, output slot).
    site_of: Vec<Vec<(usize, usize)>>,
    /// Per-context register state (independent circuits, independent state).
    states: Vec<Vec<bool>>,
    active: usize,
    /// Observability sink; disabled (no-op) unless compiled via `*_with`.
    recorder: Recorder,
}

impl MultiDevice {
    /// Compile one circuit per context onto the architecture.
    pub fn compile(arch: &ArchSpec, circuits: &[Netlist]) -> Result<MultiDevice, CompileError> {
        Self::compile_with(arch, circuits, &Recorder::disabled())
    }

    /// As [`MultiDevice::compile`], recording phase spans and metrics into
    /// `rec`. The device keeps a clone of the recorder, so later
    /// `switch_context` / `step` calls count into the same collector.
    pub fn compile_with(
        arch: &ArchSpec,
        circuits: &[Netlist],
        rec: &Recorder,
    ) -> Result<MultiDevice, CompileError> {
        if circuits.is_empty() {
            return Err(CompileError::EmptyWorkload);
        }
        let k = arch.lut.min_inputs;
        let mapped: Vec<MappedNetlist> = {
            let _span = rec.span("map");
            circuits
                .iter()
                .map(|c| map_netlist(c, k))
                .collect::<Result<_, _>>()?
        };
        Self::compile_mapped_with(arch, &mapped, rec)
    }

    /// Compile pre-mapped netlists, one per context (used directly by the
    /// temporal-execution flow, whose stages are built at the mapped level).
    pub fn compile_mapped(
        arch: &ArchSpec,
        circuits: &[MappedNetlist],
    ) -> Result<MultiDevice, CompileError> {
        Self::compile_mapped_with(arch, circuits, &Recorder::disabled())
    }

    /// As [`MultiDevice::compile_mapped`], with observability.
    pub fn compile_mapped_with(
        arch: &ArchSpec,
        circuits: &[MappedNetlist],
        rec: &Recorder,
    ) -> Result<MultiDevice, CompileError> {
        if circuits.is_empty() {
            return Err(CompileError::EmptyWorkload);
        }
        arch.validate().expect("valid architecture");
        let ctx = arch.context_id();
        let n_contexts = arch.n_contexts;
        assert!(
            circuits.len() <= n_contexts,
            "more circuits than device contexts"
        );
        let k = arch.lut.min_inputs;
        let outs = arch.lut.outputs;
        let p_max = arch.lut.max_planes();
        let mode = LutMode {
            inputs: k,
            planes: p_max,
        };

        // Per-context flows.
        let graph = RoutingGraph::build(arch);
        let mut mapped = Vec::new();
        let mut problems = Vec::new();
        let mut placements = Vec::new();
        let mut routed = Vec::new();
        for (c, m) in circuits.iter().enumerate() {
            assert_eq!(m.k, k, "pre-mapped netlists must use the fabric's k");
            let m = m.clone();
            let problem = PlacementProblem::from_mapped(&m, arch)?;
            let placement = place_with(
                &problem,
                &AnnealOptions {
                    seed: 0xC0FFEE ^ c as u64,
                    ..Default::default()
                },
                rec,
            );
            let nets = nets_from_placement(&problem, &placement);
            let r = route_context_with(&graph, &nets, &RouteOptions::default(), rec)?
                .require_converged()?;
            mapped.push(m);
            problems.push(problem);
            placements.push(placement);
            routed.push(r);
        }
        // Pad unused contexts with empty routing so columns cover every
        // device context.
        let empty = RoutedContext {
            nets: vec![],
            trees: vec![],
            delays: vec![],
            iterations: 0,
            converged: true,
            overused_edges: 0,
        };
        let mut all_routes = routed.clone();
        while all_routes.len() < n_contexts {
            all_routes.push(empty.clone());
        }
        let usage = {
            let _span = rec.span("columns");
            switch_columns(&graph, &all_routes)
        };

        // Physical logic blocks: per site, collect each context's tables.
        let _lb_span = rec.span("logic_blocks");
        let n_sites = graph.grid.full.n_cells();
        let mut site_tables: Vec<Vec<Vec<u64>>> = vec![vec![vec![0u64; outs]; n_contexts]; n_sites];
        let mut site_used = vec![false; n_sites];
        let mut site_of: Vec<Vec<(usize, usize)>> = Vec::new();
        for (c, m) in mapped.iter().enumerate() {
            let mut this_ctx = Vec::with_capacity(m.luts.len());
            for (i, lut) in m.luts.iter().enumerate() {
                let lb = lb_of_lut(i, outs);
                let site = graph.grid.full.index(placements[c].position[lb]);
                let slot = i % outs;
                site_tables[site][c][slot] = lut.table;
                site_used[site] = true;
                this_ctx.push((site, slot));
            }
            site_of.push(this_ctx);
        }
        let mut lbs: Vec<Option<AdaptiveLogicBlock>> = Vec::with_capacity(n_sites);
        for site in 0..n_sites {
            if !site_used[site] {
                lbs.push(None);
                continue;
            }
            // Group contexts by their table tuple at this site. Device
            // contexts beyond the programmed circuits stay all-zero and
            // collapse into one plane.
            let mut groups: Vec<(Vec<u64>, Vec<usize>)> = Vec::new();
            for c in 0..n_contexts {
                let key = site_tables[site][c].clone();
                match groups.iter_mut().find(|(k2, _)| *k2 == key) {
                    Some((_, cs)) => cs.push(c),
                    None => groups.push((key, vec![c])),
                }
            }
            if groups.len() > p_max {
                return Err(CompileError::PlaneOverflow {
                    lb: site,
                    needed: groups.len(),
                    available: p_max,
                });
            }
            let mut plane_of_context = vec![0usize; n_contexts];
            for (p, (_, cs)) in groups.iter().enumerate() {
                for &c in cs {
                    plane_of_context[c] = p;
                }
            }
            let controller = LocalSizeController::new(ctx, &plane_of_context, mode);
            let mut lb = AdaptiveLogicBlock::new(arch.lut, mode, SizeControl::Local(controller))
                .expect("mode fits geometry");
            for (p, (key, _)) in groups.iter().enumerate() {
                for (slot, &table) in key.iter().enumerate() {
                    lb.program(slot, p, &TruthTable::from_packed(mode.inputs, table));
                }
            }
            lbs.push(Some(lb));
        }

        drop(_lb_span);

        let states = mapped.iter().map(|m| m.initial_state().bits).collect();
        Ok(MultiDevice {
            arch: arch.clone(),
            ctx,
            mapped,
            problems,
            placements,
            routed,
            graph,
            usage,
            lbs,
            site_of,
            states,
            active: 0,
            recorder: rec.clone(),
        })
    }

    pub fn arch(&self) -> &ArchSpec {
        &self.arch
    }

    /// Number of programmed contexts.
    pub fn n_circuits(&self) -> usize {
        self.mapped.len()
    }

    pub fn active_context(&self) -> usize {
        self.active
    }

    /// Switch the active context.
    pub fn switch_context(&mut self, context: usize) {
        assert!(
            context < self.mapped.len(),
            "context {context} not programmed"
        );
        if context != self.active {
            self.recorder.incr("sim.context_switches", 1);
        }
        self.active = context;
    }

    /// One clock cycle in the active context.
    pub fn step(&mut self, inputs: &[bool]) -> Vec<bool> {
        self.recorder.incr("sim.steps", 1);
        let c = self.active;
        let m = &self.mapped[c];
        assert_eq!(inputs.len(), m.n_inputs, "input arity for context {c}");
        let mut lut_vals = vec![false; m.luts.len()];
        for i in 0..m.luts.len() {
            let in_bits: Vec<bool> = m.luts[i]
                .inputs
                .iter()
                .map(|s| self.resolve(c, *s, inputs, &lut_vals))
                .collect();
            let (site, slot) = self.site_of[c][i];
            let lb = self.lbs[site].as_ref().expect("used site has an LB");
            lut_vals[i] = lb.outputs(self.ctx, c, &in_bits)[slot];
        }
        let outs: Vec<bool> = m
            .outputs
            .iter()
            .map(|(_, s)| self.resolve(c, *s, inputs, &lut_vals))
            .collect();
        let next: Vec<bool> = m
            .dffs
            .iter()
            .map(|d| self.resolve(c, d.d, inputs, &lut_vals))
            .collect();
        self.states[c] = next;
        outs
    }

    fn resolve(&self, c: usize, src: MappedSource, inputs: &[bool], lut_vals: &[bool]) -> bool {
        match src {
            MappedSource::Input(i) => inputs[i],
            MappedSource::Register(r) => self.states[c][r],
            MappedSource::Lut(l) => lut_vals[l],
            MappedSource::Const(v) => v,
        }
    }

    /// Read a context's register state (temporal execution shuttles the
    /// shared transfer file through here).
    pub fn registers(&self, context: usize) -> &[bool] {
        &self.states[context]
    }

    /// Overwrite a context's register state.
    pub fn set_registers(&mut self, context: usize, bits: &[bool]) {
        assert_eq!(
            bits.len(),
            self.states[context].len(),
            "register count mismatch for context {context}"
        );
        self.states[context].copy_from_slice(bits);
    }

    /// Reset every context's registers.
    pub fn reset(&mut self) {
        for (m, s) in self.mapped.iter().zip(&mut self.states) {
            *s = m.initial_state().bits;
        }
    }

    /// Per-switch usage across contexts (real mixed columns).
    pub fn switch_usage(&self) -> &SwitchUsage {
        &self.usage
    }

    /// The routing-switch bitstream.
    pub fn switch_bitstream(&self) -> Bitstream {
        self.usage.to_bitstream(&self.graph, &self.arch)
    }

    /// Verify per-context net connectivity from switch state (as
    /// [`crate::Device::check_routing`], but per context with that
    /// context's own nets).
    pub fn check_routing(&self) -> Result<(), String> {
        use std::collections::{HashSet, VecDeque};
        for (c, (problem, placement)) in self.problems.iter().zip(&self.placements).enumerate() {
            let nets = nets_from_placement(problem, placement);
            let mut on: HashSet<usize> = HashSet::new();
            for (&(edge, _t), &mask) in &self.usage.switches {
                if (mask >> c) & 1 == 1 {
                    on.insert(edge);
                }
            }
            for (ni, net) in nets.iter().enumerate() {
                let start = self.graph.node(net.source);
                let mut seen = HashSet::from([start]);
                let mut q = VecDeque::from([start]);
                while let Some(node) = q.pop_front() {
                    for &e in self.graph.incident(node) {
                        if !on.contains(&e) {
                            continue;
                        }
                        let next = self.graph.other_end(e, node);
                        if seen.insert(next) {
                            q.push_back(next);
                        }
                    }
                }
                for &sink in &net.sinks {
                    if !seen.contains(&self.graph.node(sink)) {
                        return Err(format!("context {c}: net {ni} sink {sink} unreachable"));
                    }
                }
            }
        }
        Ok(())
    }

    /// Routing statistics per programmed context.
    pub fn routing_stats(&self) -> Vec<mcfpga_route::RoutingStats> {
        self.routed
            .iter()
            .map(|r| mcfpga_route::routing_stats(&self.graph, r))
            .collect()
    }

    /// Worst routed delay over programmed contexts.
    pub fn critical_delay(&self) -> f64 {
        self.routed
            .iter()
            .map(|r| r.critical_delay())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfpga_config::ColumnSetStats;
    use mcfpga_netlist::library;
    use mcfpga_netlist::words::{bits_to_u64, u64_to_bits};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn arch() -> ArchSpec {
        ArchSpec::paper_default()
    }

    #[test]
    fn four_distinct_circuits_time_multiplex_correctly() {
        let circuits = vec![
            library::adder(4),
            library::parity(8),
            library::comparator(4),
            library::gray_encoder(6),
        ];
        let mut dev = MultiDevice::compile(&arch(), &circuits).unwrap();
        dev.check_routing().unwrap();
        let mut rng = StdRng::seed_from_u64(2024);
        for _ in 0..40 {
            let c = rng.gen_range(0..circuits.len());
            dev.switch_context(c);
            let n_in = circuits[c].inputs().len();
            let inputs: Vec<bool> = (0..n_in).map(|_| rng.gen_bool(0.5)).collect();
            let expect = circuits[c].eval_comb(&inputs).unwrap();
            let got = dev.step(&inputs);
            assert_eq!(got, expect, "context {c}");
        }
    }

    #[test]
    fn sequential_circuits_keep_independent_state() {
        let circuits = vec![library::counter(4), library::lfsr(8, 0x8E)];
        let mut dev = MultiDevice::compile(&arch(), &circuits).unwrap();
        // Advance the counter to 2.
        dev.switch_context(0);
        dev.step(&[true]);
        dev.step(&[true]);
        // Run the LFSR a bit; counter state must be untouched.
        dev.switch_context(1);
        dev.step(&[]);
        dev.step(&[]);
        dev.switch_context(0);
        let out = dev.step(&[false]);
        assert_eq!(bits_to_u64(&out), 2);
    }

    #[test]
    fn switch_columns_show_real_mixed_statistics() {
        let circuits = vec![
            library::adder(4),
            library::multiplier(3),
            library::alu(4),
            library::popcount(6),
        ];
        let dev = MultiDevice::compile(&arch(), &circuits).unwrap();
        let stats = ColumnSetStats::measure(&dev.switch_usage().columns(), dev.ctx);
        assert!(stats.n_columns > 20);
        assert!(stats.n_constant < stats.n_columns, "mixed circuits differ");
        assert!(stats.change_rate > 0.0 && stats.change_rate < 1.0);
    }

    #[test]
    fn adder_still_adds_on_the_fabric() {
        let circuits = vec![library::adder(4), library::subtractor(4)];
        let mut dev = MultiDevice::compile(&arch(), &circuits).unwrap();
        for (x, y) in [(3u64, 9u64), (15, 1), (0, 0), (7, 7)] {
            dev.switch_context(0);
            let mut inp = u64_to_bits(x, 4);
            inp.extend(u64_to_bits(y, 4));
            inp.push(false);
            let out = dev.step(&inp);
            assert_eq!(bits_to_u64(&out[..4]) + ((out[4] as u64) << 4), x + y);
            dev.switch_context(1);
            let mut inp = u64_to_bits(x, 4);
            inp.extend(u64_to_bits(y, 4));
            let out = dev.step(&inp);
            assert_eq!(bits_to_u64(&out[..4]), x.wrapping_sub(y) & 0xF);
        }
    }

    #[test]
    fn critical_delay_is_positive() {
        let circuits = vec![library::adder(4)];
        let dev = MultiDevice::compile(&arch(), &circuits).unwrap();
        assert!(dev.critical_delay() > 0.0);
    }
}
