#![allow(clippy::needless_range_loop)]
//! The heterogeneous multi-context device: one *independent* circuit per
//! context, time-multiplexed on one fabric — the paper's motivating DPGA
//! use case ("sequentially configured as different processors in real
//! time").
//!
//! Unlike [`crate::Device`] (structurally aligned workloads with plane
//! sharing), each context here is mapped, placed and routed on its own; the
//! physical logic blocks then collect, per site, the truth tables each
//! context put there, and plane grouping happens per site across contexts.
//! Routing switches genuinely differ between contexts, so the extracted
//! configuration columns exhibit the real mixed statistics of Table 1.

use mcfpga_arch::{ArchSpec, ContextId, LutMode};
use mcfpga_config::Bitstream;
use mcfpga_lut::{AdaptiveLogicBlock, LocalSizeController, SizeControl, TruthTable};
use mcfpga_map::{map_netlist, MappedNetlist, MappedSource};
use mcfpga_netlist::Netlist;
use mcfpga_obs::Recorder;
use mcfpga_place::{
    lb_of_lut, place_delta, place_with, AnnealOptions, Placement, PlacementProblem,
};
use mcfpga_route::{
    nets_from_placement, route_context_delta, route_context_with, switch_columns, RouteOptions,
    RoutedContext, RoutingGraph, SwitchUsage,
};

use crate::device::CompileError;
use crate::kernel::{self, CompiledKernel, KernelScratch, LANES};
use crate::observe::{
    self, ActivityCensus, ActivityReport, ContextProbes, ProbeCapture, ProbeSet, ReconfigEnergy,
};
use crate::optimize::{KernelOptions, OptimizeStats};
use serde::{Deserialize, Serialize};

/// Compile-pipeline knobs.
///
/// Marked `#[non_exhaustive]`: construct via [`CompileOptions::default`]
/// and the `with_*` builders so future knobs stay non-breaking.
///
/// ```
/// use mcfpga_sim::CompileOptions;
/// let opts = CompileOptions::default().with_parallel(false);
/// assert!(!opts.parallel);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct CompileOptions {
    /// Fan the per-context map/place/route work out across scoped threads
    /// (one per programmed context). Contexts are fully independent — each
    /// gets its own derived annealing seed and its own routing pass on the
    /// shared (immutable) graph — and results are merged back in context
    /// order, so the compiled device is bit-for-bit identical to the serial
    /// path.
    pub parallel: bool,
    /// Router knobs applied to every context.
    pub route: RouteOptions,
    /// Simulation-kernel lowering knobs (optimizer pass). Unlike `parallel`,
    /// these *do* change the compiled artifact (the kernel instruction
    /// stream), so the serving layer folds them into the design fingerprint.
    pub kernel: KernelOptions,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            parallel: true,
            route: RouteOptions::default(),
            kernel: KernelOptions::default(),
        }
    }
}

impl CompileOptions {
    /// Fan the per-context compile out across scoped threads (default on).
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Router knobs applied to every context.
    pub fn with_route(mut self, route: RouteOptions) -> Self {
        self.route = route;
        self
    }

    /// Simulation-kernel lowering knobs applied to every context.
    pub fn with_kernel_options(mut self, kernel: KernelOptions) -> Self {
        self.kernel = kernel;
        self
    }

    /// Worker threads the compile pipeline will actually use for `n_tasks`
    /// independent per-context jobs: 1 when serial, otherwise capped by both
    /// the machine's available parallelism and the task count. The
    /// `flow.parallelism` gauge reports exactly this value.
    pub fn resolved_workers(&self, n_tasks: usize) -> usize {
        if self.parallel {
            effective_workers(n_tasks)
        } else {
            1
        }
    }
}

/// Runtime failure of the compiled-device serving API ([`MultiDevice::try_step`]
/// and friends): bad caller input reported in-band instead of aborting the
/// process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The requested context index has no programmed circuit.
    ContextNotProgrammed { context: usize, programmed: usize },
    /// `step` was driven with the wrong number of primary inputs.
    InputArity {
        context: usize,
        expected: usize,
        got: usize,
    },
    /// `set_registers` was given the wrong number of register bits.
    RegisterCount {
        context: usize,
        expected: usize,
        got: usize,
    },
    /// `arm_probes` was given a signal name the context cannot resolve.
    UnknownProbe { context: usize, name: String },
    /// A throughput run asked for a chunk width the kernel dispatcher does
    /// not instantiate (see [`crate::kernel::SUPPORTED_WIDTHS`]).
    UnsupportedWidth { width: usize },
    /// A throughput run's stimulus length is not a whole number of chunks
    /// (`n_inputs * width` words each).
    ThroughputStimulus {
        context: usize,
        chunk_words: usize,
        got: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::ContextNotProgrammed {
                context,
                programmed,
            } => write!(
                f,
                "context {context} not programmed ({programmed} circuits loaded)"
            ),
            SimError::InputArity {
                context,
                expected,
                got,
            } => write!(f, "context {context} expects {expected} inputs, got {got}"),
            SimError::RegisterCount {
                context,
                expected,
                got,
            } => write!(
                f,
                "context {context} has {expected} registers, got {got} bits"
            ),
            SimError::UnknownProbe { context, name } => write!(
                f,
                "context {context} has no probe-able signal named {name:?}"
            ),
            SimError::UnsupportedWidth { width } => write!(
                f,
                "chunk width {width} unsupported (use one of {:?})",
                crate::kernel::SUPPORTED_WIDTHS
            ),
            SimError::ThroughputStimulus {
                context,
                chunk_words,
                got,
            } => write!(
                f,
                "context {context} throughput stimulus must be a multiple of \
                 {chunk_words} words (n_inputs * width), got {got}"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Worker threads worth spawning for `n_tasks` independent jobs: never more
/// than the machine exposes, never more than there are jobs.
pub(crate) fn effective_workers(n_tasks: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(n_tasks)
}

/// Run `f(worker, task)` for every task `0..n` across up to `workers` scoped
/// threads via an atomic work queue. Workers claim tasks in nondeterministic
/// order, but the returned `Vec` is slot-indexed by task id, so callers
/// always see results in task order — the basis of the parallel compile's
/// bit-for-bit determinism. The `worker` argument is the stable index of the
/// claiming thread (0 on the serial path), so instrumentation can attribute
/// work to pool members. With `workers <= 1` this is a plain serial loop
/// (no threads spawned).
pub(crate) fn fan_out<T: Send>(
    n: usize,
    workers: usize,
    f: impl Fn(usize, usize) -> T + Sync,
) -> Vec<T> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    if workers <= 1 || n <= 1 {
        return (0..n).map(|c| f(0, c)).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let f = &f;
    std::thread::scope(|s| {
        let slots = &slots;
        let next = &next;
        for w in 0..workers {
            s.spawn(move || loop {
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= n {
                    break;
                }
                let value = f(w, c);
                *slots[c].lock().unwrap() = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every slot filled once the scope joins")
        })
        .collect()
}

/// One context's intermediate compile products, retained from a finished
/// compile so a later [`MultiDevice::compile_delta`] can reuse them. Opaque
/// outside this crate: callers obtain them from
/// [`MultiDevice::context_artifacts`] and hand references back as
/// [`DeltaSeed`]s — the equality gates that make reuse sound live inside
/// the compile pipeline, not in the caller.
#[derive(Debug, Clone, PartialEq)]
pub struct ContextArtifacts {
    pub(crate) mapped: MappedNetlist,
    pub(crate) problem: PlacementProblem,
    pub(crate) placement: Placement,
    pub(crate) routed: RoutedContext,
}

/// Per-context seed for [`MultiDevice::compile_delta`]: what (if anything)
/// a prior compile of this context slot left behind.
#[derive(Debug, Clone, Copy)]
pub enum DeltaSeed<'a> {
    /// No usable prior artifact: run the cold per-context pipeline.
    Cold,
    /// The circuit is byte-identical to the one `0` was compiled from
    /// (the caller vouches for this, e.g. via a per-context content hash):
    /// every artifact is reused verbatim without recomputation.
    Unchanged(&'a ContextArtifacts),
    /// The circuit changed: the context is re-mapped, and each downstream
    /// artifact is reused only when its inputs are *provably identical* to
    /// the stale compile's (placement when the placement problem is equal,
    /// routing when the derived nets are equal). Each per-context compile
    /// is a deterministic pure function of its inputs, so these equality
    /// gates keep the delta result bit-identical to a cold compile.
    Changed(&'a ContextArtifacts),
}

/// What [`MultiDevice::compile_delta`] reused versus recomputed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Programmed contexts in the workload.
    pub contexts_total: usize,
    /// Contexts reused wholesale from an [`DeltaSeed::Unchanged`] seed.
    pub contexts_reused: usize,
    /// *Changed* contexts whose placement survived re-mapping (identical
    /// placement problem, so the stale placement is the cold answer).
    pub placements_reused: usize,
    /// *Changed* contexts whose routing survived re-placement (identical
    /// nets, so the stale routing trees are the cold answer).
    pub routes_reused: usize,
}

/// Paper-grounded quantities attached to each `context_switch` trace event:
/// per-context switch bitstreams (for bit-flip counts and measured change
/// rate), the pattern-class census of the switch columns (Figs. 3–5), and
/// the total SE decoder cost of realising them in the RCM (Fig. 9).
///
/// Built once per device, and only when the recorder is enabled, so the
/// uninstrumented `switch_context` path stays cheap.
struct ReconfigMeta {
    /// Per context: every routing switch's on/off state, in the
    /// deterministic order of [`SwitchUsage::columns`].
    state_bits: Vec<Vec<bool>>,
    n_columns: usize,
    n_constant: usize,
    n_single_bit: usize,
    n_general: usize,
    se_cost_total: u64,
}

impl ReconfigMeta {
    fn build(usage: &SwitchUsage, ctx: ContextId) -> ReconfigMeta {
        let columns = usage.columns();
        let stats = mcfpga_config::ColumnSetStats::measure(&columns, ctx);
        let se_cost_total = columns
            .iter()
            .map(|&col| mcfpga_rcm::synthesize(col, ctx).cost().n_ses as u64)
            .sum();
        let state_bits = (0..ctx.n_contexts())
            .map(|c| columns.iter().map(|col| col.value_in(c)).collect())
            .collect();
        ReconfigMeta {
            state_bits,
            n_columns: stats.n_columns,
            n_constant: stats.n_constant,
            n_single_bit: stats.n_single_bit,
            n_general: stats.n_general,
            se_cost_total,
        }
    }
}

/// A compiled heterogeneous device.
pub struct MultiDevice {
    arch: ArchSpec,
    ctx: ContextId,
    mapped: Vec<MappedNetlist>,
    problems: Vec<PlacementProblem>,
    placements: Vec<Placement>,
    routed: Vec<RoutedContext>,
    graph: RoutingGraph,
    usage: SwitchUsage,
    /// Physical logic blocks, indexed by grid site (row-major over the
    /// full placement grid).
    lbs: Vec<Option<AdaptiveLogicBlock>>,
    /// Per context: LUT position -> (site index, output slot).
    site_of: Vec<Vec<(usize, usize)>>,
    /// Per-context register state (independent circuits, independent state).
    states: Vec<Vec<bool>>,
    active: usize,
    /// Per-context compiled bit-parallel kernels, built on first batched
    /// use. Configuration is immutable after compile, so a cached kernel
    /// only invalidates when the wanted *variant* changes: optimized when
    /// [`KernelOptions::optimize`] is set and no observability consumer is
    /// armed, unoptimized otherwise (probes, census, and fault campaigns
    /// address pre-optimization LUT positions).
    kernels: Vec<Option<CompiledKernel>>,
    /// Kernel lowering knobs from the compile options (mutable afterwards
    /// via [`MultiDevice::set_kernel_options`]).
    kernel_options: KernelOptions,
    /// Per-context lane-parallel register words; valid only while the
    /// matching `batch_synced` flag holds.
    batch_regs: Vec<Vec<u64>>,
    /// Per context: false whenever the scalar state moved since the last
    /// batched step, forcing a re-broadcast on the next one.
    batch_synced: Vec<bool>,
    batch_scratch: KernelScratch,
    /// Scalar hot-path scratch, persistent across cycles.
    scratch_lut_vals: Vec<bool>,
    scratch_in_bits: Vec<bool>,
    scratch_next: Vec<bool>,
    /// Observability sink; disabled (no-op) unless compiled via `*_with`.
    recorder: Recorder,
    /// Lazily built on the first traced context switch (enabled recorders
    /// only); `None` forever on the uninstrumented path.
    reconfig_meta: Option<ReconfigMeta>,
    /// Per-context armed signal probes; `None` everywhere until
    /// [`MultiDevice::arm_probes`], so the batched hot path pays a single
    /// branch when probing is off.
    probes: Vec<Option<ContextProbes>>,
    /// Per-LUT activity accounting; `None` until
    /// [`MultiDevice::enable_activity_census`].
    census: Option<ActivityCensus>,
    /// Context switches with energy accounting (see
    /// [`MultiDevice::reconfig_energy`]).
    switch_count: u64,
    /// Configuration bits flipped across those switches.
    switch_bits_flipped: u64,
}

impl MultiDevice {
    /// Compile one circuit per context onto the architecture.
    pub fn compile(arch: &ArchSpec, circuits: &[Netlist]) -> Result<MultiDevice, CompileError> {
        Self::compile_with(arch, circuits, &Recorder::disabled())
    }

    /// As [`MultiDevice::compile`], recording phase spans and metrics into
    /// `rec`. The device keeps a clone of the recorder, so later
    /// `switch_context` / `step` calls count into the same collector.
    pub fn compile_with(
        arch: &ArchSpec,
        circuits: &[Netlist],
        rec: &Recorder,
    ) -> Result<MultiDevice, CompileError> {
        Self::compile_opts(arch, circuits, &CompileOptions::default(), rec)
    }

    /// As [`MultiDevice::compile_with`], with explicit pipeline knobs
    /// ([`CompileOptions::parallel`] and the shared [`RouteOptions`]).
    pub fn compile_opts(
        arch: &ArchSpec,
        circuits: &[Netlist],
        opts: &CompileOptions,
        rec: &Recorder,
    ) -> Result<MultiDevice, CompileError> {
        if circuits.is_empty() {
            return Err(CompileError::EmptyWorkload);
        }
        let k = arch.lut.min_inputs;
        let mapped: Vec<MappedNetlist> = {
            let _span = rec.span("map");
            let workers = opts.resolved_workers(circuits.len());
            // Mapping is per-circuit independent; fan it out and merge
            // results in context order (first in-order error wins, exactly
            // as the serial collect would report).
            fan_out(circuits.len(), workers, |_, c| map_netlist(&circuits[c], k))
                .into_iter()
                .collect::<Result<_, _>>()?
        };
        Self::compile_mapped_opts(arch, &mapped, opts, rec)
    }

    /// Compile pre-mapped netlists, one per context (used directly by the
    /// temporal-execution flow, whose stages are built at the mapped level).
    pub fn compile_mapped(
        arch: &ArchSpec,
        circuits: &[MappedNetlist],
    ) -> Result<MultiDevice, CompileError> {
        Self::compile_mapped_with(arch, circuits, &Recorder::disabled())
    }

    /// As [`MultiDevice::compile_mapped`], with observability.
    pub fn compile_mapped_with(
        arch: &ArchSpec,
        circuits: &[MappedNetlist],
        rec: &Recorder,
    ) -> Result<MultiDevice, CompileError> {
        Self::compile_mapped_opts(arch, circuits, &CompileOptions::default(), rec)
    }

    /// As [`MultiDevice::compile_mapped_with`], with explicit pipeline knobs.
    pub fn compile_mapped_opts(
        arch: &ArchSpec,
        circuits: &[MappedNetlist],
        opts: &CompileOptions,
        rec: &Recorder,
    ) -> Result<MultiDevice, CompileError> {
        if circuits.is_empty() {
            return Err(CompileError::EmptyWorkload);
        }
        arch.validate().expect("valid architecture");
        assert!(
            circuits.len() <= arch.n_contexts,
            "more circuits than device contexts"
        );
        let k = arch.lut.min_inputs;

        // Per-context flows: each context is placed (with its own derived
        // seed) and routed independently on the shared immutable graph, so
        // the work fans out across threads when `opts.parallel` is set. The
        // per-context results are merged back in context order either way,
        // making the parallel device bit-for-bit identical to the serial one
        // (including which error is reported: the first failing context).
        let graph = RoutingGraph::build(arch);
        for m in circuits {
            assert_eq!(m.k, k, "pre-mapped netlists must use the fabric's k");
        }
        let per_context =
            |worker: usize,
             c: usize|
             -> Result<(PlacementProblem, Placement, RoutedContext), CompileError> {
                // Begin/End trace events make the pool's fan-out visible in the
                // trace viewer, attributed to the claiming worker.
                let _ev = rec.begin(
                    "compile_context",
                    &[("context", c.into()), ("worker", worker.into())],
                );
                let problem = PlacementProblem::from_mapped(&circuits[c], arch)?;
                let placement = place_with(
                    &problem,
                    &AnnealOptions {
                        seed: 0xC0FFEE ^ c as u64,
                        ..Default::default()
                    },
                    rec,
                );
                let nets = nets_from_placement(&problem, &placement);
                let r = route_context_with(&graph, &nets, &opts.route, rec)?.require_converged()?;
                Ok((problem, placement, r))
            };
        let mapped: Vec<MappedNetlist> = circuits.to_vec();
        let mut problems = Vec::with_capacity(circuits.len());
        let mut placements = Vec::with_capacity(circuits.len());
        let mut routed = Vec::with_capacity(circuits.len());
        let workers = opts.resolved_workers(circuits.len());
        rec.set_gauge("flow.parallelism", workers as f64);
        if workers > 1 {
            for result in fan_out(circuits.len(), workers, per_context) {
                let (problem, placement, r) = result?;
                problems.push(problem);
                placements.push(placement);
                routed.push(r);
            }
        } else {
            // Plain serial loop: stop at the first failing context instead
            // of computing the rest (the parallel path reports the same
            // first-in-order error, it just can't avoid the extra work).
            for c in 0..circuits.len() {
                let (problem, placement, r) = per_context(0, c)?;
                problems.push(problem);
                placements.push(placement);
                routed.push(r);
            }
        }
        Self::assemble(
            arch,
            graph,
            mapped,
            problems,
            placements,
            routed,
            opts.kernel,
            rec,
        )
    }

    /// Compile with per-context artifact reuse from a prior compile of a
    /// near-identical workload — the delta path behind `mcfpga-serve`'s
    /// near-match design cache.
    ///
    /// `seeds` carries one [`DeltaSeed`] per circuit. Each per-context
    /// pipeline stage (map → place → route) is a deterministic pure function
    /// of that context's inputs, independent of every other context, so a
    /// stale artifact is reused **only** when its inputs are identical:
    /// wholesale for [`DeltaSeed::Unchanged`] slots, and per-stage behind
    /// the equality gates of [`mcfpga_place::place_delta`] and
    /// [`mcfpga_route::route_context_delta`] for [`DeltaSeed::Changed`]
    /// slots. The resulting device is bit-for-bit identical to
    /// [`MultiDevice::compile_opts`] on the same inputs — never merely
    /// equivalent — which is what lets cached designs be shared between the
    /// cold and delta paths.
    ///
    /// `cancel` is polled between per-context compile phases (and once more
    /// before device assembly); when it reports `true` the compile stops
    /// with [`CompileError::DeadlineExceeded`] instead of burning a worker
    /// on a result nobody is waiting for. With `seeds` all
    /// [`DeltaSeed::Cold`] this is exactly a cancellable cold compile.
    pub fn compile_delta(
        arch: &ArchSpec,
        circuits: &[Netlist],
        opts: &CompileOptions,
        rec: &Recorder,
        seeds: &[DeltaSeed<'_>],
        cancel: Option<&(dyn Fn() -> bool + Sync)>,
    ) -> Result<(MultiDevice, DeltaStats), CompileError> {
        if circuits.is_empty() {
            return Err(CompileError::EmptyWorkload);
        }
        assert_eq!(
            seeds.len(),
            circuits.len(),
            "one DeltaSeed per circuit (use DeltaSeed::Cold for new slots)"
        );
        arch.validate().expect("valid architecture");
        assert!(
            circuits.len() <= arch.n_contexts,
            "more circuits than device contexts"
        );
        let k = arch.lut.min_inputs;
        let graph = RoutingGraph::build(arch);
        let expired = || cancel.is_some_and(|f| f());

        struct CtxOut {
            mapped: MappedNetlist,
            problem: PlacementProblem,
            placement: Placement,
            routed: RoutedContext,
            context_reused: bool,
            placement_reused: bool,
            route_reused: bool,
        }
        let per_context = |worker: usize, c: usize| -> Result<CtxOut, CompileError> {
            // The budget check between per-context phases: a job whose
            // deadline lapsed mid-service stops before the next context.
            if expired() {
                return Err(CompileError::DeadlineExceeded);
            }
            let _ev = rec.begin(
                "compile_context",
                &[("context", c.into()), ("worker", worker.into())],
            );
            if let DeltaSeed::Unchanged(a) = seeds[c] {
                return Ok(CtxOut {
                    mapped: a.mapped.clone(),
                    problem: a.problem.clone(),
                    placement: a.placement.clone(),
                    routed: a.routed.clone(),
                    context_reused: true,
                    placement_reused: true,
                    route_reused: true,
                });
            }
            let stale = match seeds[c] {
                DeltaSeed::Changed(a) => Some(a),
                _ => None,
            };
            let mapped = map_netlist(&circuits[c], k)?;
            let problem = PlacementProblem::from_mapped(&mapped, arch)?;
            let anneal = AnnealOptions {
                seed: 0xC0FFEE ^ c as u64,
                ..Default::default()
            };
            let (placement, placement_reused) = match stale {
                Some(a) => place_delta(&problem, &anneal, &a.problem, &a.placement, rec),
                None => (place_with(&problem, &anneal, rec), false),
            };
            let nets = nets_from_placement(&problem, &placement);
            let (routed, route_reused) = match stale {
                Some(a) => route_context_delta(&graph, &nets, &opts.route, &a.routed, rec)?,
                None => (route_context_with(&graph, &nets, &opts.route, rec)?, false),
            };
            let routed = routed.require_converged()?;
            Ok(CtxOut {
                mapped,
                problem,
                placement,
                routed,
                context_reused: false,
                placement_reused,
                route_reused,
            })
        };

        let mut mapped = Vec::with_capacity(circuits.len());
        let mut problems = Vec::with_capacity(circuits.len());
        let mut placements = Vec::with_capacity(circuits.len());
        let mut routed = Vec::with_capacity(circuits.len());
        let mut stats = DeltaStats {
            contexts_total: circuits.len(),
            ..Default::default()
        };
        let workers = opts.resolved_workers(circuits.len());
        rec.set_gauge("flow.parallelism", workers as f64);
        let mut merge = |out: CtxOut| {
            stats.contexts_reused += out.context_reused as usize;
            if !out.context_reused {
                stats.placements_reused += out.placement_reused as usize;
                stats.routes_reused += out.route_reused as usize;
            }
            mapped.push(out.mapped);
            problems.push(out.problem);
            placements.push(out.placement);
            routed.push(out.routed);
        };
        if workers > 1 {
            for result in fan_out(circuits.len(), workers, per_context) {
                merge(result?);
            }
        } else {
            for c in 0..circuits.len() {
                merge(per_context(0, c)?);
            }
        }
        // Last budget check before the (serial) assembly tail.
        if expired() {
            return Err(CompileError::DeadlineExceeded);
        }
        let device = Self::assemble(
            arch,
            graph,
            mapped,
            problems,
            placements,
            routed,
            opts.kernel,
            rec,
        )?;
        Ok((device, stats))
    }

    /// Clone out every programmed context's intermediate compile products,
    /// in context order — the seeds a later [`MultiDevice::compile_delta`]
    /// of a perturbed workload reuses.
    pub fn context_artifacts(&self) -> Vec<ContextArtifacts> {
        (0..self.mapped.len())
            .map(|c| ContextArtifacts {
                mapped: self.mapped[c].clone(),
                problem: self.problems[c].clone(),
                placement: self.placements[c].clone(),
                routed: self.routed[c].clone(),
            })
            .collect()
    }

    /// Shared assembly tail of [`MultiDevice::compile_mapped_opts`] and
    /// [`MultiDevice::compile_delta`]: pad unprogrammed contexts, extract
    /// switch columns, group per-site truth tables into LUT planes, and
    /// build the device. Deterministic in its inputs, so the two compile
    /// paths produce identical devices from identical per-context results.
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        arch: &ArchSpec,
        graph: RoutingGraph,
        mapped: Vec<MappedNetlist>,
        problems: Vec<PlacementProblem>,
        placements: Vec<Placement>,
        routed: Vec<RoutedContext>,
        kernel_options: KernelOptions,
        rec: &Recorder,
    ) -> Result<MultiDevice, CompileError> {
        let ctx = arch.context_id();
        let n_contexts = arch.n_contexts;
        let k = arch.lut.min_inputs;
        let outs = arch.lut.outputs;
        let p_max = arch.lut.max_planes();
        let mode = LutMode {
            inputs: k,
            planes: p_max,
        };
        // Pad unused contexts with empty routing so columns cover every
        // device context.
        let empty = RoutedContext {
            nets: vec![],
            trees: vec![],
            delays: vec![],
            iterations: 0,
            converged: true,
            overused_edges: 0,
            edge_occupancy: vec![],
            edge_history: vec![],
        };
        let mut all_routes = routed.clone();
        while all_routes.len() < n_contexts {
            all_routes.push(empty.clone());
        }
        let usage = {
            let _span = rec.span("columns");
            switch_columns(&graph, &all_routes)
        };

        // Physical logic blocks: per site, collect each context's tables.
        let _lb_span = rec.span("logic_blocks");
        let n_sites = graph.grid.full.n_cells();
        let mut site_tables: Vec<Vec<Vec<u64>>> = vec![vec![vec![0u64; outs]; n_contexts]; n_sites];
        let mut site_used = vec![false; n_sites];
        let mut site_of: Vec<Vec<(usize, usize)>> = Vec::new();
        for (c, m) in mapped.iter().enumerate() {
            let mut this_ctx = Vec::with_capacity(m.luts.len());
            for (i, lut) in m.luts.iter().enumerate() {
                let lb = lb_of_lut(i, outs);
                let site = graph.grid.full.index(placements[c].position[lb]);
                let slot = i % outs;
                site_tables[site][c][slot] = lut.table;
                site_used[site] = true;
                this_ctx.push((site, slot));
            }
            site_of.push(this_ctx);
        }
        let mut lbs: Vec<Option<AdaptiveLogicBlock>> = Vec::with_capacity(n_sites);
        for site in 0..n_sites {
            if !site_used[site] {
                lbs.push(None);
                continue;
            }
            // Group contexts by their table tuple at this site. Device
            // contexts beyond the programmed circuits stay all-zero and
            // collapse into one plane.
            let mut groups: Vec<(Vec<u64>, Vec<usize>)> = Vec::new();
            for c in 0..n_contexts {
                let key = site_tables[site][c].clone();
                match groups.iter_mut().find(|(k2, _)| *k2 == key) {
                    Some((_, cs)) => cs.push(c),
                    None => groups.push((key, vec![c])),
                }
            }
            if groups.len() > p_max {
                return Err(CompileError::PlaneOverflow {
                    lb: site,
                    needed: groups.len(),
                    available: p_max,
                });
            }
            let mut plane_of_context = vec![0usize; n_contexts];
            for (p, (_, cs)) in groups.iter().enumerate() {
                for &c in cs {
                    plane_of_context[c] = p;
                }
            }
            let controller = LocalSizeController::new(ctx, &plane_of_context, mode);
            let mut lb = AdaptiveLogicBlock::new(arch.lut, mode, SizeControl::Local(controller))
                .expect("mode fits geometry");
            for (p, (key, _)) in groups.iter().enumerate() {
                for (slot, &table) in key.iter().enumerate() {
                    lb.program(slot, p, &TruthTable::from_packed(mode.inputs, table));
                }
            }
            lbs.push(Some(lb));
        }

        drop(_lb_span);

        let states: Vec<Vec<bool>> = mapped.iter().map(|m| m.initial_state().bits).collect();
        let n_programmed = mapped.len();
        Ok(MultiDevice {
            arch: arch.clone(),
            ctx,
            mapped,
            problems,
            placements,
            routed,
            graph,
            usage,
            lbs,
            site_of,
            states,
            active: 0,
            kernels: vec![None; n_programmed],
            kernel_options,
            batch_regs: vec![Vec::new(); n_programmed],
            batch_synced: vec![false; n_programmed],
            batch_scratch: KernelScratch::new(),
            scratch_lut_vals: Vec::new(),
            scratch_in_bits: Vec::new(),
            scratch_next: Vec::new(),
            recorder: rec.clone(),
            reconfig_meta: None,
            probes: (0..n_programmed).map(|_| None).collect(),
            census: None,
            switch_count: 0,
            switch_bits_flipped: 0,
        })
    }

    pub fn arch(&self) -> &ArchSpec {
        &self.arch
    }

    /// Number of programmed contexts.
    pub fn n_circuits(&self) -> usize {
        self.mapped.len()
    }

    pub fn active_context(&self) -> usize {
        self.active
    }

    /// Switch the active context.
    ///
    /// Panicking `#[inline]` convenience wrapper over the canonical
    /// [`MultiDevice::try_switch_context`]; use the fallible form on
    /// serving paths that must survive bad input.
    #[inline]
    pub fn switch_context(&mut self, context: usize) {
        self.try_switch_context(context)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Switch the active context, reporting an unprogrammed context in-band.
    pub fn try_switch_context(&mut self, context: usize) -> Result<(), SimError> {
        if context >= self.mapped.len() {
            return Err(SimError::ContextNotProgrammed {
                context,
                programmed: self.mapped.len(),
            });
        }
        if context != self.active {
            self.recorder.incr("sim.context_switches", 1);
            // Energy accounting needs the per-context switch bitstreams;
            // build them lazily and only when someone is looking (a traced
            // run or an enabled census), so the uninstrumented hot path
            // never pays for the column synthesis.
            if self.recorder.is_enabled() || self.census.is_some() {
                let from = self.active;
                let meta = self
                    .reconfig_meta
                    .get_or_insert_with(|| ReconfigMeta::build(&self.usage, self.ctx));
                let a = &meta.state_bits[from];
                let b = &meta.state_bits[context];
                let bits_flipped = a.iter().zip(b).filter(|(x, y)| x != y).count();
                let change_rate = mcfpga_config::measure_change_rate(a, b);
                self.switch_count += 1;
                self.switch_bits_flipped += bits_flipped as u64;
                self.recorder
                    .incr("sim.switch.bits_flipped", bits_flipped as u64);
                if self.recorder.is_enabled() {
                    self.recorder.instant(
                        "context_switch",
                        &[
                            ("from", from.into()),
                            ("to", context.into()),
                            ("bits_flipped", bits_flipped.into()),
                            ("change_rate", change_rate.into()),
                            (
                                "energy_pj",
                                observe::switch_energy_pj(bits_flipped as u64).into(),
                            ),
                            (
                                "energy_pj_cum",
                                observe::switch_energy_pj(self.switch_bits_flipped).into(),
                            ),
                            ("n_columns", meta.n_columns.into()),
                            ("n_constant", meta.n_constant.into()),
                            ("n_single_bit", meta.n_single_bit.into()),
                            ("n_general", meta.n_general.into()),
                            ("se_cost_total", meta.se_cost_total.into()),
                        ],
                    );
                }
            }
        }
        self.active = context;
        Ok(())
    }

    /// One clock cycle in the active context.
    ///
    /// Panicking `#[inline]` convenience wrapper over the canonical
    /// [`MultiDevice::try_step`]; use the fallible form on serving paths
    /// that must survive bad input.
    #[inline]
    pub fn step(&mut self, inputs: &[bool]) -> Vec<bool> {
        self.try_step(inputs).unwrap_or_else(|e| panic!("{e}"))
    }

    /// One clock cycle in the active context, reporting an input-arity
    /// mismatch in-band instead of aborting the process.
    pub fn try_step(&mut self, inputs: &[bool]) -> Result<Vec<bool>, SimError> {
        let c = self.active;
        let m = &self.mapped[c];
        if inputs.len() != m.n_inputs {
            return Err(SimError::InputArity {
                context: c,
                expected: m.n_inputs,
                got: inputs.len(),
            });
        }
        self.recorder.incr("sim.steps", 1);
        self.recorder.incr("sim.cycles", 1);
        // Persistent scratch: the only allocation left is the returned
        // output vector.
        let n_luts = self.mapped[c].luts.len();
        let mut lut_vals = std::mem::take(&mut self.scratch_lut_vals);
        let mut in_bits = std::mem::take(&mut self.scratch_in_bits);
        lut_vals.clear();
        lut_vals.resize(n_luts, false);
        for i in 0..n_luts {
            in_bits.clear();
            in_bits.extend(
                self.mapped[c].luts[i]
                    .inputs
                    .iter()
                    .map(|s| self.resolve(c, *s, inputs, &lut_vals)),
            );
            let (site, slot) = self.site_of[c][i];
            let lb = self.lbs[site].as_ref().expect("used site has an LB");
            lut_vals[i] = lb.output(self.ctx, c, &in_bits, slot);
        }
        let m = &self.mapped[c];
        let outs: Vec<bool> = m
            .outputs
            .iter()
            .map(|(_, s)| self.resolve(c, *s, inputs, &lut_vals))
            .collect();
        let mut next = std::mem::take(&mut self.scratch_next);
        next.clear();
        next.extend(
            self.mapped[c]
                .dffs
                .iter()
                .map(|d| self.resolve(c, d.d, inputs, &lut_vals)),
        );
        std::mem::swap(&mut self.states[c], &mut next);
        self.scratch_next = next;
        self.scratch_lut_vals = lut_vals;
        self.scratch_in_bits = in_bits;
        self.batch_synced[c] = false;
        Ok(outs)
    }

    /// One clock edge over [`LANES`] independent stimulus lanes in the
    /// active context: bit `l` of every input, output, and register word is
    /// one complete stimulus stream. Lane 0 is bit-for-bit the scalar path
    /// and is written back to the scalar state after every batched step.
    ///
    /// Panicking `#[inline]` convenience wrapper over the canonical
    /// [`MultiDevice::try_step_batch`].
    #[inline]
    pub fn step_batch(&mut self, inputs: &[u64]) -> Vec<u64> {
        self.try_step_batch(inputs)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// As [`MultiDevice::step_batch`], reporting an input-arity mismatch
    /// in-band.
    pub fn try_step_batch(&mut self, inputs: &[u64]) -> Result<Vec<u64>, SimError> {
        let mut out = Vec::new();
        self.try_step_batch_into(inputs, &mut out)?;
        Ok(out)
    }

    /// Allocation-free batched step: `out` is cleared and refilled with one
    /// word per primary output of the active context.
    pub fn try_step_batch_into(
        &mut self,
        inputs: &[u64],
        out: &mut Vec<u64>,
    ) -> Result<(), SimError> {
        let c = self.active;
        let n_inputs = self.mapped[c].n_inputs;
        if inputs.len() != n_inputs {
            return Err(SimError::InputArity {
                context: c,
                expected: n_inputs,
                got: inputs.len(),
            });
        }
        self.ensure_kernel(c, self.want_optimized(c));
        if !self.batch_synced[c] {
            // The context's scalar state moved since its last batched step:
            // every lane resumes from the same registers.
            kernel::broadcast(&self.states[c], &mut self.batch_regs[c]);
            self.batch_synced[c] = true;
        }
        // Register probes report the in-cycle (pre-edge) values — what the
        // outputs and downstream logic saw — so snapshot before the kernel
        // commits the next state in place. One branch when disarmed.
        if let Some(probes) = self.probes[c].as_mut() {
            probes.snapshot_regs(&self.batch_regs[c]);
        }
        let kernel = self.kernels[c].as_ref().expect("kernel built above");
        kernel.step(
            inputs,
            &mut self.batch_regs[c],
            &mut self.batch_scratch,
            out,
        );
        // Lane 0 writes back so the scalar view stays coherent.
        kernel::extract_lane(&self.batch_regs[c], 0, &mut self.states[c]);
        // Observability taps, each one branch when disarmed: the census
        // reads the LUT words the kernel just computed, probes record
        // inputs / pre-edge registers / LUT outputs into their rings.
        if let Some(census) = self.census.as_mut() {
            census.record(c, &self.batch_scratch.lut_words);
        }
        if let Some(probes) = self.probes[c].as_mut() {
            probes.sample(inputs, &self.batch_scratch.lut_words);
        }
        self.recorder.incr("sim.words", 1);
        self.recorder.incr("sim.cycles", LANES as u64);
        Ok(())
    }

    /// Lower `context` to a fresh instruction stream: the mapped netlist
    /// gives sources and emission (= topological) order, the logic blocks
    /// give each position's active plane and packed truth table.
    fn build_kernel(&self, context: usize) -> CompiledKernel {
        let m = &self.mapped[context];
        CompiledKernel::build(
            m.n_inputs,
            m.dffs.len(),
            m.luts.iter().enumerate().map(|(i, lut)| {
                let (site, slot) = self.site_of[context][i];
                let lb = self.lbs[site].as_ref().expect("used site has an LB");
                let plane = lb.active_plane(self.ctx, context);
                (lut.inputs.as_slice(), lb.plane_packed(slot, plane))
            }),
            m.outputs.iter().map(|(_, s)| *s),
            m.dffs.iter().map(|d| d.d),
        )
    }

    /// Throughput-mode batched run: drive `context` through a whole stimulus
    /// stream at chunk width `width` (64·width lanes per step), optionally
    /// fanning independent word blocks across up to `threads` workers.
    ///
    /// Panicking convenience wrapper over the canonical
    /// [`MultiDevice::try_run_throughput`].
    pub fn run_throughput(
        &mut self,
        context: usize,
        stimulus: &[u64],
        width: usize,
        threads: usize,
    ) -> Vec<u64> {
        self.try_run_throughput(context, stimulus, width, threads)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Throughput-mode batched run over a prepared stimulus stream.
    ///
    /// `stimulus` is chunk-major and input-major within each chunk: step `t`
    /// of input `i`, chunk word `w`, lives at
    /// `stimulus[(t * n_inputs + i) * width + w]`; lane `l` of a chunk is
    /// bit `l % 64` of word `l / 64`, one independent stimulus stream. The
    /// returned buffer has the same shape over the context's outputs:
    /// `out[(t * n_outputs + o) * width + w]`.
    ///
    /// Every lane starts from the context's current scalar register state
    /// (broadcast), and — unlike [`MultiDevice::step_batch`] — the run does
    /// **not** write state back: this is the "no mid-batch feedback
    /// observation" streaming mode, a pure function of the stimulus that
    /// leaves the device's scalar and batched state untouched.
    ///
    /// With `threads > 1` (and no probes or census armed) the chunk stream
    /// is split into one block per worker and fanned across the compile
    /// pool's scoped threads. Sequential circuits first run a cheap
    /// register-cone-only prologue to seed each block's starting registers,
    /// so the parallel run is bit-for-bit identical to the serial one.
    /// Armed probes or an enabled census force `threads = 1` and the
    /// unoptimized kernel (their samples address pre-optimization LUT
    /// positions, in stream order), and sample all 64·width lanes.
    pub fn try_run_throughput(
        &mut self,
        context: usize,
        stimulus: &[u64],
        width: usize,
        threads: usize,
    ) -> Result<Vec<u64>, SimError> {
        self.check_context(context)?;
        if !kernel::SUPPORTED_WIDTHS.contains(&width) {
            return Err(SimError::UnsupportedWidth { width });
        }
        match width {
            1 => self.run_throughput_inner::<1>(context, stimulus, threads),
            2 => self.run_throughput_inner::<2>(context, stimulus, threads),
            4 => self.run_throughput_inner::<4>(context, stimulus, threads),
            _ => self.run_throughput_inner::<8>(context, stimulus, threads),
        }
    }

    fn run_throughput_inner<const W: usize>(
        &mut self,
        c: usize,
        stimulus: &[u64],
        threads: usize,
    ) -> Result<Vec<u64>, SimError> {
        let n_inputs = self.mapped[c].n_inputs;
        let chunk_words = n_inputs * W;
        if chunk_words == 0 {
            return Ok(Vec::new());
        }
        if !stimulus.len().is_multiple_of(chunk_words) {
            return Err(SimError::ThroughputStimulus {
                context: c,
                chunk_words,
                got: stimulus.len(),
            });
        }
        let n_chunks = stimulus.len() / chunk_words;
        let observed = self.census.is_some() || self.probes[c].is_some();
        self.ensure_kernel(c, self.want_optimized(c));
        let kernel = self.kernels[c].take().expect("kernel built above");
        let n_outputs = kernel.n_outputs();
        // Every lane starts from the scalar register state.
        let mut regs = Vec::new();
        kernel::broadcast_wide(&self.states[c], &mut regs, W);
        // `threads` is an explicit caller knob (bench cells sweep it), so it
        // is honored even past `available_parallelism` — oversubscription
        // just timeslices, and the block-split path stays exercised on small
        // machines. Observability forces the serial path: samples are
        // stream-ordered.
        let workers = if observed {
            1
        } else {
            threads.clamp(1, n_chunks.max(1))
        };
        let out = if workers > 1 {
            // Sequential prologue: advance only the registers' fanin cone
            // to find each block's starting register chunks. Combinational
            // contexts skip it entirely.
            let block_len = n_chunks.div_ceil(workers);
            let n_blocks = n_chunks.div_ceil(block_len);
            let mut block_regs: Vec<Vec<u64>> = Vec::with_capacity(n_blocks);
            if kernel.n_regs() == 0 {
                block_regs.resize(n_blocks, Vec::new());
            } else {
                let cone = kernel.state_cone();
                let mut scratch = KernelScratch::new();
                let mut r = regs.clone();
                for b in 0..n_blocks {
                    block_regs.push(r.clone());
                    if b + 1 == n_blocks {
                        break;
                    }
                    for t in b * block_len..(b + 1) * block_len {
                        kernel.step_state_cone_wide::<W>(
                            &cone,
                            &stimulus[t * chunk_words..][..chunk_words],
                            &mut r,
                            &mut scratch,
                        );
                    }
                }
            }
            let blocks = fan_out(n_blocks, workers, |_, b| {
                let lo = b * block_len;
                let hi = ((b + 1) * block_len).min(n_chunks);
                let mut regs = block_regs[b].clone();
                let mut scratch = KernelScratch::new();
                let mut step_out = Vec::with_capacity(n_outputs * W);
                let mut block_out = Vec::with_capacity((hi - lo) * n_outputs * W);
                for t in lo..hi {
                    kernel.step_wide::<W>(
                        &stimulus[t * chunk_words..][..chunk_words],
                        &mut regs,
                        &mut scratch,
                        &mut step_out,
                    );
                    block_out.extend_from_slice(&step_out);
                }
                block_out
            });
            let mut out = Vec::with_capacity(n_chunks * n_outputs * W);
            for block in blocks {
                out.extend(block);
            }
            out
        } else {
            let mut out = vec![0u64; n_chunks * n_outputs * W];
            let mut scratch = std::mem::take(&mut self.batch_scratch);
            let mut step_out = Vec::with_capacity(n_outputs * W);
            for t in 0..n_chunks {
                let stim = &stimulus[t * chunk_words..][..chunk_words];
                if let Some(probes) = self.probes[c].as_mut() {
                    probes.snapshot_regs(&regs);
                }
                kernel.step_wide::<W>(stim, &mut regs, &mut scratch, &mut step_out);
                out[t * n_outputs * W..][..n_outputs * W].copy_from_slice(&step_out);
                if let Some(census) = self.census.as_mut() {
                    census.record_wide(c, &scratch.lut_words, W);
                }
                if let Some(probes) = self.probes[c].as_mut() {
                    probes.sample_wide(stim, &scratch.lut_words, W);
                }
            }
            self.batch_scratch = scratch;
            out
        };
        self.kernels[c] = Some(kernel);
        self.recorder
            .incr("sim.throughput_words", (n_chunks * W) as u64);
        self.recorder
            .incr("sim.cycles", (n_chunks * W * LANES) as u64);
        Ok(out)
    }

    fn resolve(&self, c: usize, src: MappedSource, inputs: &[bool], lut_vals: &[bool]) -> bool {
        match src {
            MappedSource::Input(i) => inputs[i],
            MappedSource::Register(r) => self.states[c][r],
            MappedSource::Lut(l) => lut_vals[l],
            MappedSource::Const(v) => v,
        }
    }

    /// Read a context's register state (temporal execution shuttles the
    /// shared transfer file through here).
    pub fn registers(&self, context: usize) -> &[bool] {
        &self.states[context]
    }

    /// Number of programmed contexts.
    pub fn n_contexts(&self) -> usize {
        self.mapped.len()
    }

    /// Primary-input count of `context`'s netlist.
    pub fn n_inputs(&self, context: usize) -> Result<usize, SimError> {
        self.check_context(context)?;
        Ok(self.mapped[context].n_inputs)
    }

    /// Primary-output count of `context`'s netlist.
    pub fn n_outputs(&self, context: usize) -> Result<usize, SimError> {
        self.check_context(context)?;
        Ok(self.mapped[context].outputs.len())
    }

    /// The power-on register state of `context` — what [`MultiDevice::reset`]
    /// restores, independent of any stepping done since compile.
    pub fn initial_registers(&self, context: usize) -> Result<Vec<bool>, SimError> {
        self.check_context(context)?;
        Ok(self.mapped[context].initial_state().bits)
    }

    /// Build (and cache) `context`'s compiled batch kernel, returning a
    /// shared reference. Serving layers clone the kernel out once per
    /// design so sessions can step it without holding the device. The
    /// kernel is optimized exactly when [`MultiDevice::kernel_options`]
    /// asks for it and no probes or census are armed.
    pub fn kernel(&mut self, context: usize) -> Result<&CompiledKernel, SimError> {
        self.check_context(context)?;
        self.ensure_kernel(context, self.want_optimized(context));
        Ok(self.kernels[context].as_ref().expect("kernel built above"))
    }

    /// Current kernel lowering knobs.
    pub fn kernel_options(&self) -> KernelOptions {
        self.kernel_options
    }

    /// Change the kernel lowering knobs after compile. Cached kernels of the
    /// wrong variant are rebuilt lazily on their next use.
    pub fn set_kernel_options(&mut self, options: KernelOptions) {
        self.kernel_options = options;
    }

    /// What one optimizer run does to `context`'s kernel — exact counts for
    /// bench reporting, computed on a fresh unoptimized lowering without
    /// touching the kernel cache.
    pub fn kernel_optimize_stats(&self, context: usize) -> Result<OptimizeStats, SimError> {
        self.check_context(context)?;
        Ok(self.build_kernel(context).optimize_with_stats().1)
    }

    /// Should `context`'s kernel be optimized right now? Only when the
    /// options ask for it *and* nothing that addresses pre-optimization LUT
    /// positions (armed probes, the activity census) is watching.
    fn want_optimized(&self, context: usize) -> bool {
        self.kernel_options.optimize && self.census.is_none() && self.probes[context].is_none()
    }

    /// Make the cached kernel for `context` exist in the wanted variant.
    fn ensure_kernel(&mut self, context: usize, optimized: bool) {
        let stale = match &self.kernels[context] {
            Some(k) => k.optimized() != optimized,
            None => true,
        };
        if stale {
            let _span = self.recorder.span("sim_kernel_build");
            let mut kernel = self.build_kernel(context);
            if optimized {
                kernel = kernel.optimize();
            }
            self.kernels[context] = Some(kernel);
        }
    }

    fn check_context(&self, context: usize) -> Result<(), SimError> {
        if context >= self.mapped.len() {
            return Err(SimError::ContextNotProgrammed {
                context,
                programmed: self.mapped.len(),
            });
        }
        Ok(())
    }

    /// Overwrite a context's register state.
    ///
    /// Panicking `#[inline]` convenience wrapper over the canonical
    /// [`MultiDevice::try_set_registers`]; use the fallible form on
    /// serving paths that must survive bad input.
    #[inline]
    pub fn set_registers(&mut self, context: usize, bits: &[bool]) {
        self.try_set_registers(context, bits)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Overwrite a context's register state, reporting a bad context index
    /// or register-count mismatch in-band.
    pub fn try_set_registers(&mut self, context: usize, bits: &[bool]) -> Result<(), SimError> {
        if context >= self.states.len() {
            return Err(SimError::ContextNotProgrammed {
                context,
                programmed: self.states.len(),
            });
        }
        if bits.len() != self.states[context].len() {
            return Err(SimError::RegisterCount {
                context,
                expected: self.states[context].len(),
                got: bits.len(),
            });
        }
        self.states[context].copy_from_slice(bits);
        self.batch_synced[context] = false;
        Ok(())
    }

    /// Read `context`'s register state as 64-lane batch words (one `u64`
    /// per register, one stimulus lane per bit) — the context-extraction
    /// half of a checkpoint/migration protocol. When the context has only
    /// been stepped scalar, the scalar state is broadcast across all lanes,
    /// exactly as [`MultiDevice::try_step_batch`] would seed them.
    pub fn lane_registers(&self, context: usize) -> Result<Vec<u64>, SimError> {
        self.check_context(context)?;
        if self.batch_synced[context] {
            Ok(self.batch_regs[context].clone())
        } else {
            let mut words = Vec::new();
            kernel::broadcast(&self.states[context], &mut words);
            Ok(words)
        }
    }

    /// Overwrite `context`'s register state from 64-lane batch words — the
    /// context-restoration half: a state extracted with
    /// [`MultiDevice::lane_registers`] on one device resumes bit-identically
    /// on another device compiled from the same request. The scalar view
    /// ([`MultiDevice::registers`]) tracks lane 0, matching what a batch
    /// step leaves behind.
    pub fn try_set_lane_registers(
        &mut self,
        context: usize,
        words: &[u64],
    ) -> Result<(), SimError> {
        self.check_context(context)?;
        if words.len() != self.states[context].len() {
            return Err(SimError::RegisterCount {
                context,
                expected: self.states[context].len(),
                got: words.len(),
            });
        }
        self.batch_regs[context].clear();
        self.batch_regs[context].extend_from_slice(words);
        self.batch_synced[context] = true;
        kernel::extract_lane(&self.batch_regs[context], 0, &mut self.states[context]);
        Ok(())
    }

    /// Reset every context's registers.
    pub fn reset(&mut self) {
        for (m, s) in self.mapped.iter().zip(&mut self.states) {
            *s = m.initial_state().bits;
        }
        self.batch_synced.iter_mut().for_each(|b| *b = false);
    }

    /// Per-switch usage across contexts (real mixed columns).
    pub fn switch_usage(&self) -> &SwitchUsage {
        &self.usage
    }

    /// On/off state of every routing switch when `context` is active, in the
    /// deterministic order of [`SwitchUsage::columns`]. The `context_switch`
    /// trace events measure `bits_flipped` and `change_rate` between exactly
    /// these vectors, so tests can recompute the payloads independently via
    /// `mcfpga_config::measure_change_rate`.
    pub fn switch_state_bits(&self, context: usize) -> Vec<bool> {
        self.usage
            .columns()
            .iter()
            .map(|col| col.value_in(context))
            .collect()
    }

    /// The routing-switch bitstream.
    pub fn switch_bitstream(&self) -> Bitstream {
        self.usage.to_bitstream(&self.graph, &self.arch)
    }

    /// Verify per-context net connectivity from switch state (as
    /// [`crate::Device::check_routing`], but per context with that
    /// context's own nets).
    pub fn check_routing(&self) -> Result<(), String> {
        use std::collections::{HashSet, VecDeque};
        for (c, (problem, placement)) in self.problems.iter().zip(&self.placements).enumerate() {
            let nets = nets_from_placement(problem, placement);
            let mut on: HashSet<usize> = HashSet::new();
            for (&(edge, _t), &mask) in &self.usage.switches {
                if (mask >> c) & 1 == 1 {
                    on.insert(edge);
                }
            }
            for (ni, net) in nets.iter().enumerate() {
                let start = self.graph.node(net.source);
                let mut seen = HashSet::from([start]);
                let mut q = VecDeque::from([start]);
                while let Some(node) = q.pop_front() {
                    for &e in self.graph.incident(node) {
                        if !on.contains(&e) {
                            continue;
                        }
                        let next = self.graph.other_end(e, node);
                        if seen.insert(next) {
                            q.push_back(next);
                        }
                    }
                }
                for &sink in &net.sinks {
                    if !seen.contains(&self.graph.node(sink)) {
                        return Err(format!("context {c}: net {ni} sink {sink} unreachable"));
                    }
                }
            }
        }
        Ok(())
    }

    /// Routing statistics per programmed context.
    pub fn routing_stats(&self) -> Vec<mcfpga_route::RoutingStats> {
        self.routed
            .iter()
            .map(|r| mcfpga_route::routing_stats(&self.graph, r))
            .collect()
    }

    /// Worst routed delay over programmed contexts.
    pub fn critical_delay(&self) -> f64 {
        self.routed
            .iter()
            .map(|r| r.critical_delay())
            .fold(0.0, f64::max)
    }

    // ---- fabric observability ------------------------------------------

    /// Congestion heatmap of one programmed context: per-edge final
    /// occupancy and PathFinder history cost, rankable via
    /// [`CongestionMap::hottest`](mcfpga_route::CongestionMap::hottest) and
    /// diffable across delta-compiles.
    pub fn congestion_map(&self, context: usize) -> Result<mcfpga_route::CongestionMap, SimError> {
        self.check_context(context)?;
        Ok(mcfpga_route::CongestionMap::measure(
            &self.graph,
            &self.routed[context],
        ))
    }

    /// Congestion heatmaps for every programmed context, in context order.
    pub fn congestion_maps(&self) -> Vec<mcfpga_route::CongestionMap> {
        self.routed
            .iter()
            .map(|r| mcfpga_route::CongestionMap::measure(&self.graph, r))
            .collect()
    }

    /// Every signal name `context` can resolve for [`MultiDevice::arm_probes`]:
    /// the netlist's primary-output names, then the `in*` / `reg*` / `lut*`
    /// index families.
    pub fn probe_signals(&self, context: usize) -> Result<Vec<String>, SimError> {
        self.check_context(context)?;
        Ok(observe::probe_names(&self.mapped[context]))
    }

    /// Arm `set`'s probes on `context`, replacing any previously armed set
    /// (and discarding its samples). Armed probes sample on every *batched*
    /// step of that context — all [`LANES`] lanes per word — into bounded
    /// per-probe rings; the scalar [`MultiDevice::step`] path is never
    /// sampled. Fails on the first unresolvable name.
    pub fn arm_probes(&mut self, context: usize, set: &ProbeSet) -> Result<(), SimError> {
        self.check_context(context)?;
        self.probes[context] = Some(ContextProbes::arm(&self.mapped[context], set, context)?);
        Ok(())
    }

    /// Disarm `context`'s probes, discarding buffered samples. Idempotent.
    pub fn disarm_probes(&mut self, context: usize) -> Result<(), SimError> {
        self.check_context(context)?;
        self.probes[context] = None;
        Ok(())
    }

    /// Buffered samples of `context`'s armed probes, in tap order (empty
    /// when nothing is armed).
    pub fn probe_captures(&self, context: usize) -> Result<Vec<ProbeCapture>, SimError> {
        self.check_context(context)?;
        Ok(self.probes[context]
            .as_ref()
            .map(|p| p.captures())
            .unwrap_or_default())
    }

    /// Render `context`'s probe captures as a [`Waveform`](mcfpga_obs::Waveform)
    /// — one 64-wide signal per probe (bit = stimulus lane), or one 1-wide
    /// signal per probe when `lane` is given — ready for
    /// [`to_vcd`](mcfpga_obs::Waveform::to_vcd).
    pub fn probe_waveform(
        &self,
        context: usize,
        lane: Option<usize>,
    ) -> Result<mcfpga_obs::Waveform, SimError> {
        let captures = self.probe_captures(context)?;
        Ok(observe::captures_to_waveform(
            &self.mapped[context].name,
            &captures,
            lane,
        ))
    }

    /// Start per-LUT activity accounting on the batched path (idempotent;
    /// counters persist until the device is dropped). Also enables
    /// context-switch energy accounting even without a recorder.
    pub fn enable_activity_census(&mut self) {
        if self.census.is_none() {
            self.census = Some(ActivityCensus::new(self.mapped.len()));
        }
    }

    /// Activity census of `context`: per-LUT toggles, static probability,
    /// and the `toggle_rate × fanout` power proxy. All-zero (and NaN-free)
    /// when the census is disabled or the context never stepped batched.
    pub fn activity_census(&self, context: usize) -> Result<ActivityReport, SimError> {
        self.check_context(context)?;
        let m = &self.mapped[context];
        Ok(match &self.census {
            Some(census) => census.report(context, m),
            None => ActivityCensus::new(self.mapped.len()).report(context, m),
        })
    }

    /// Mean per-LUT toggle rate of `context` on the batched path; 0.0
    /// (never NaN) for zero-cycle, zero-LUT, or census-disabled devices.
    pub fn toggle_rate(&self, context: usize) -> f64 {
        match &self.census {
            Some(census) if context < self.mapped.len() => census.toggle_rate(context),
            _ => 0.0,
        }
    }

    /// Cumulative context-switch energy under the per-bit proxy model
    /// (accounted on traced or census-enabled devices; all-zero otherwise).
    pub fn reconfig_energy(&self) -> ReconfigEnergy {
        ReconfigEnergy::from_totals(self.switch_count, self.switch_bits_flipped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfpga_config::ColumnSetStats;
    use mcfpga_netlist::library;
    use mcfpga_netlist::words::{bits_to_u64, u64_to_bits};
    use rand::rngs::StdRng;
    use rand::{Rng, RngCore, SeedableRng};

    fn arch() -> ArchSpec {
        ArchSpec::paper_default()
    }

    #[test]
    fn four_distinct_circuits_time_multiplex_correctly() {
        let circuits = vec![
            library::adder(4),
            library::parity(8),
            library::comparator(4),
            library::gray_encoder(6),
        ];
        let mut dev = MultiDevice::compile(&arch(), &circuits).unwrap();
        dev.check_routing().unwrap();
        let mut rng = StdRng::seed_from_u64(2024);
        for _ in 0..40 {
            let c = rng.gen_range(0..circuits.len());
            dev.switch_context(c);
            let n_in = circuits[c].inputs().len();
            let inputs: Vec<bool> = (0..n_in).map(|_| rng.gen_bool(0.5)).collect();
            let expect = circuits[c].eval_comb(&inputs).unwrap();
            let got = dev.step(&inputs);
            assert_eq!(got, expect, "context {c}");
        }
    }

    #[test]
    fn sequential_circuits_keep_independent_state() {
        let circuits = vec![library::counter(4), library::lfsr(8, 0x8E)];
        let mut dev = MultiDevice::compile(&arch(), &circuits).unwrap();
        // Advance the counter to 2.
        dev.switch_context(0);
        dev.step(&[true]);
        dev.step(&[true]);
        // Run the LFSR a bit; counter state must be untouched.
        dev.switch_context(1);
        dev.step(&[]);
        dev.step(&[]);
        dev.switch_context(0);
        let out = dev.step(&[false]);
        assert_eq!(bits_to_u64(&out), 2);
    }

    #[test]
    fn switch_columns_show_real_mixed_statistics() {
        let circuits = vec![
            library::adder(4),
            library::multiplier(3),
            library::alu(4),
            library::popcount(6),
        ];
        let dev = MultiDevice::compile(&arch(), &circuits).unwrap();
        let stats = ColumnSetStats::measure(&dev.switch_usage().columns(), dev.ctx);
        assert!(stats.n_columns > 20);
        assert!(stats.n_constant < stats.n_columns, "mixed circuits differ");
        assert!(stats.change_rate > 0.0 && stats.change_rate < 1.0);
    }

    #[test]
    fn adder_still_adds_on_the_fabric() {
        let circuits = vec![library::adder(4), library::subtractor(4)];
        let mut dev = MultiDevice::compile(&arch(), &circuits).unwrap();
        for (x, y) in [(3u64, 9u64), (15, 1), (0, 0), (7, 7)] {
            dev.switch_context(0);
            let mut inp = u64_to_bits(x, 4);
            inp.extend(u64_to_bits(y, 4));
            inp.push(false);
            let out = dev.step(&inp);
            assert_eq!(bits_to_u64(&out[..4]) + ((out[4] as u64) << 4), x + y);
            dev.switch_context(1);
            let mut inp = u64_to_bits(x, 4);
            inp.extend(u64_to_bits(y, 4));
            let out = dev.step(&inp);
            assert_eq!(bits_to_u64(&out[..4]), x.wrapping_sub(y) & 0xF);
        }
    }

    #[test]
    fn critical_delay_is_positive() {
        let circuits = vec![library::adder(4)];
        let dev = MultiDevice::compile(&arch(), &circuits).unwrap();
        assert!(dev.critical_delay() > 0.0);
    }

    fn compile_both_ways(circuits: &[Netlist]) -> (MultiDevice, MultiDevice) {
        let serial = MultiDevice::compile_opts(
            &arch(),
            circuits,
            &CompileOptions {
                parallel: false,
                ..Default::default()
            },
            &Recorder::disabled(),
        )
        .unwrap();
        let parallel = MultiDevice::compile_opts(
            &arch(),
            circuits,
            &CompileOptions {
                parallel: true,
                ..Default::default()
            },
            &Recorder::disabled(),
        )
        .unwrap();
        (serial, parallel)
    }

    fn assert_devices_identical(serial: &MultiDevice, parallel: &MultiDevice) {
        assert_eq!(serial.mapped, parallel.mapped);
        assert_eq!(serial.placements, parallel.placements);
        assert_eq!(serial.routed, parallel.routed);
        assert_eq!(serial.usage, parallel.usage);
        assert_eq!(serial.site_of, parallel.site_of);
        assert_eq!(serial.states, parallel.states);
        assert_eq!(serial.switch_bitstream(), parallel.switch_bitstream());
    }

    #[test]
    fn parallel_compile_is_bit_identical_to_serial() {
        let circuits = vec![
            library::adder(4),
            library::multiplier(3),
            library::alu(4),
            library::popcount(6),
        ];
        let (mut serial, mut parallel) = compile_both_ways(&circuits);
        assert_devices_identical(&serial, &parallel);
        // And the devices behave identically under stimulus.
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..30 {
            let c = rng.gen_range(0..circuits.len());
            serial.switch_context(c);
            parallel.switch_context(c);
            let n_in = circuits[c].inputs().len();
            let inputs: Vec<bool> = (0..n_in).map(|_| rng.gen_bool(0.5)).collect();
            assert_eq!(serial.step(&inputs), parallel.step(&inputs));
        }
    }

    #[test]
    fn parallelism_gauge_matches_resolved_workers() {
        let rec = Recorder::enabled();
        let circuits = vec![library::adder(4), library::parity(8)];
        let opts = CompileOptions::default();
        MultiDevice::compile_opts(&arch(), &circuits, &opts, &rec).unwrap();
        // The gauge must report the worker count the options actually
        // resolve to (capped by the machine and the task count), not a
        // recomputation that can drift.
        let expected = opts.resolved_workers(circuits.len());
        assert!(expected >= 1 && expected <= circuits.len());
        assert_eq!(rec.gauge("flow.parallelism"), Some(expected as f64));
        // Serial compile always resolves to (and reports) 1.
        let serial = CompileOptions {
            parallel: false,
            ..Default::default()
        };
        assert_eq!(serial.resolved_workers(circuits.len()), 1);
        let rec = Recorder::enabled();
        MultiDevice::compile_opts(&arch(), &circuits, &serial, &rec).unwrap();
        assert_eq!(rec.gauge("flow.parallelism"), Some(1.0));
    }

    #[test]
    fn compile_emits_worker_tagged_events_per_context() {
        use mcfpga_obs::TracePhase;
        let rec = Recorder::enabled();
        let circuits = vec![library::adder(4), library::parity(8)];
        MultiDevice::compile_with(&arch(), &circuits, &rec).unwrap();
        let events = rec.trace_events();
        let begins: Vec<_> = events
            .iter()
            .filter(|e| e.name == "compile_context" && e.phase == TracePhase::Begin)
            .collect();
        let ends = events
            .iter()
            .filter(|e| e.name == "compile_context" && e.phase == TracePhase::End)
            .count();
        assert_eq!(begins.len(), circuits.len());
        assert_eq!(ends, circuits.len());
        let contexts: std::collections::BTreeSet<u64> = begins
            .iter()
            .map(|e| e.arg_u64("context").expect("context arg"))
            .collect();
        assert_eq!(contexts, (0..circuits.len() as u64).collect());
        let workers = CompileOptions::default().resolved_workers(circuits.len());
        for b in &begins {
            let w = b.arg_u64("worker").expect("worker arg") as usize;
            assert!(w < workers, "worker {w} out of pool of {workers}");
        }
    }

    #[test]
    fn context_switch_events_carry_paper_grounded_payloads() {
        let rec = Recorder::enabled();
        let circuits = vec![
            library::adder(4),
            library::parity(8),
            library::comparator(4),
        ];
        let mut dev = MultiDevice::compile_with(&arch(), &circuits, &rec).unwrap();
        dev.switch_context(1);
        dev.switch_context(2);
        dev.switch_context(2); // same context: no switch, no event
        let events: Vec<_> = rec
            .trace_events()
            .into_iter()
            .filter(|e| e.name == "context_switch")
            .collect();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].arg_u64("from"), Some(1));
        assert_eq!(events[1].arg_u64("to"), Some(2));

        // The traced change rate and flip count must agree with a direct
        // measurement on the device's own switch bitstreams.
        let ev = &events[0];
        assert_eq!(ev.arg_u64("from"), Some(0));
        assert_eq!(ev.arg_u64("to"), Some(1));
        let a = dev.switch_state_bits(0);
        let b = dev.switch_state_bits(1);
        let flipped = a.iter().zip(&b).filter(|(x, y)| x != y).count() as u64;
        assert!(flipped > 0, "distinct circuits must flip some switches");
        assert_eq!(ev.arg_u64("bits_flipped"), Some(flipped));
        assert_eq!(
            ev.arg_f64("change_rate"),
            Some(mcfpga_config::measure_change_rate(&a, &b))
        );

        // Pattern classes partition the columns, and the SE decoder cost
        // agrees with synthesizing each column directly.
        let n_columns = ev.arg_u64("n_columns").expect("n_columns");
        assert_eq!(n_columns as usize, dev.switch_usage().columns().len());
        assert_eq!(
            ev.arg_u64("n_constant").unwrap()
                + ev.arg_u64("n_single_bit").unwrap()
                + ev.arg_u64("n_general").unwrap(),
            n_columns
        );
        let se: u64 = dev
            .switch_usage()
            .columns()
            .iter()
            .map(|&col| mcfpga_rcm::synthesize(col, dev.ctx).cost().n_ses as u64)
            .sum();
        assert_eq!(ev.arg_u64("se_cost_total"), Some(se));
    }

    #[test]
    fn try_step_rejects_bad_input_arity_without_panicking() {
        let circuits = vec![library::adder(4)];
        let mut dev = MultiDevice::compile(&arch(), &circuits).unwrap();
        // adder(4) takes 9 inputs (a, b, cin); drive it with 3.
        let err = dev.try_step(&[false; 3]).unwrap_err();
        assert_eq!(
            err,
            SimError::InputArity {
                context: 0,
                expected: 9,
                got: 3
            }
        );
        // The failed step must not count as a simulated cycle.
        let rec = Recorder::enabled();
        let mut dev = MultiDevice::compile_with(&arch(), &circuits, &rec).unwrap();
        assert!(dev.try_step(&[false; 3]).is_err());
        assert_eq!(rec.counter("sim.steps"), 0);
        // A correct step still works afterwards.
        assert!(dev.try_step(&[false; 9]).is_ok());
        assert_eq!(rec.counter("sim.steps"), 1);
    }

    #[test]
    fn try_switch_context_rejects_unprogrammed_contexts() {
        let circuits = vec![library::adder(4)];
        let mut dev = MultiDevice::compile(&arch(), &circuits).unwrap();
        let err = dev.try_switch_context(3).unwrap_err();
        assert_eq!(
            err,
            SimError::ContextNotProgrammed {
                context: 3,
                programmed: 1
            }
        );
        assert_eq!(dev.active_context(), 0);
        dev.try_switch_context(0).unwrap();
    }

    #[test]
    fn try_set_registers_rejects_bad_counts() {
        let circuits = vec![library::counter(4)];
        let mut dev = MultiDevice::compile(&arch(), &circuits).unwrap();
        let err = dev.try_set_registers(0, &[true; 17]).unwrap_err();
        assert_eq!(
            err,
            SimError::RegisterCount {
                context: 0,
                expected: 4,
                got: 17
            }
        );
        let err = dev.try_set_registers(5, &[true; 4]).unwrap_err();
        assert!(matches!(err, SimError::ContextNotProgrammed { .. }));
        dev.try_set_registers(0, &[true, false, true, false])
            .unwrap();
        assert_eq!(dev.registers(0), &[true, false, true, false]);
    }

    #[test]
    fn sim_errors_display_the_offending_values() {
        let e = SimError::InputArity {
            context: 2,
            expected: 9,
            got: 3,
        };
        assert_eq!(e.to_string(), "context 2 expects 9 inputs, got 3");
        let e = SimError::UnknownProbe {
            context: 1,
            name: "bogus".into(),
        };
        assert_eq!(
            e.to_string(),
            "context 1 has no probe-able signal named \"bogus\""
        );
    }

    #[test]
    fn unknown_probe_names_error_in_band() {
        let mut dev = MultiDevice::compile(&arch(), &[library::adder(4)]).unwrap();
        let err = dev
            .arm_probes(0, &ProbeSet::new().tap("no_such_wire"))
            .unwrap_err();
        assert_eq!(
            err,
            SimError::UnknownProbe {
                context: 0,
                name: "no_such_wire".into()
            }
        );
        // Every advertised name arms cleanly.
        let names = dev.probe_signals(0).unwrap();
        let mut set = ProbeSet::new();
        for n in &names {
            set = set.tap(n);
        }
        dev.arm_probes(0, &set).unwrap();
        assert_eq!(dev.probe_captures(0).unwrap().len(), names.len());
    }

    #[test]
    fn output_probes_match_batched_outputs_on_every_lane() {
        let circuits = vec![library::adder(4), library::parity(8)];
        let mut dev = MultiDevice::compile(&arch(), &circuits).unwrap();
        // Tap every primary output of context 0 by name.
        let n_outs = dev.n_outputs(0).unwrap();
        let names = dev.probe_signals(0).unwrap();
        let mut set = ProbeSet::new();
        for n in &names[..n_outs] {
            set = set.tap(n);
        }
        dev.arm_probes(0, &set).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let mut expected: Vec<Vec<u64>> = vec![Vec::new(); n_outs];
        for step in 0..12 {
            // Interleave the other context: its steps must not sample.
            dev.switch_context(step % 2);
            let n_in = dev.n_inputs(step % 2).unwrap();
            let words: Vec<u64> = (0..n_in).map(|_| rng.next_u64()).collect();
            let out = dev.step_batch(&words);
            if step % 2 == 0 {
                for (o, word) in out.iter().enumerate() {
                    expected[o].push(*word);
                }
            }
        }
        for (o, cap) in dev.probe_captures(0).unwrap().iter().enumerate() {
            assert_eq!(cap.samples, expected[o], "probe {} ({})", o, cap.name);
            assert_eq!(cap.dropped, 0);
        }
        // The waveform export carries the same words, one 64-wide signal
        // per probe, and a chosen lane extracts to 1-wide signals.
        let wave = dev.probe_waveform(0, None).unwrap();
        assert_eq!(wave.signals().len(), n_outs);
        assert_eq!(wave.signals()[0].samples, expected[0]);
        let lane0 = dev.probe_waveform(0, Some(0)).unwrap();
        assert!(lane0.signals().iter().all(|s| s.width == 1));
    }

    #[test]
    fn census_counts_activity_and_switch_energy_together() {
        let circuits = vec![library::adder(4), library::multiplier(3)];
        let mut dev = MultiDevice::compile(&arch(), &circuits).unwrap();
        dev.enable_activity_census();
        let mut rng = StdRng::seed_from_u64(7);
        for step in 0..20 {
            dev.switch_context(step % 2);
            let n_in = dev.n_inputs(step % 2).unwrap();
            let words: Vec<u64> = (0..n_in).map(|_| rng.next_u64()).collect();
            dev.step_batch(&words);
        }
        for c in 0..2 {
            let report = dev.activity_census(c).unwrap();
            assert_eq!(report.lane_cycles, 10 * LANES as u64);
            assert!(report.toggles_total > 0, "random stimulus must toggle");
            for row in &report.luts {
                assert!((row.power_proxy - row.toggle_rate * row.fanout as f64).abs() < 1e-12);
                assert!(!row.static_probability.is_nan());
            }
            let ranked = report.ranked();
            assert!(ranked
                .windows(2)
                .all(|w| w[0].power_proxy >= w[1].power_proxy));
            assert!(dev.toggle_rate(c) > 0.0);
        }
        // Census-enabled devices account switch energy without a recorder:
        // 19 switches, each flipping the same 0<->1 bit distance.
        let a = dev.switch_state_bits(0);
        let b = dev.switch_state_bits(1);
        let dist = a.iter().zip(&b).filter(|(x, y)| x != y).count() as u64;
        let energy = dev.reconfig_energy();
        assert_eq!(energy.switches, 19);
        assert_eq!(energy.bits_flipped, 19 * dist);
        assert!((energy.energy_pj - observe::switch_energy_pj(19 * dist)).abs() < 1e-9);
        assert_eq!(energy.mean_bits_per_switch, dist as f64);
    }

    #[test]
    fn traced_switch_events_carry_the_energy_model() {
        let rec = Recorder::enabled();
        let circuits = vec![library::adder(4), library::parity(8)];
        let mut dev = MultiDevice::compile_with(&arch(), &circuits, &rec).unwrap();
        dev.switch_context(1);
        dev.switch_context(0);
        let events: Vec<_> = rec
            .trace_events()
            .into_iter()
            .filter(|e| e.name == "context_switch")
            .collect();
        assert_eq!(events.len(), 2);
        let mut cum = 0.0;
        for e in &events {
            let bits = e.arg_u64("bits_flipped").unwrap();
            let pj = e.arg_f64("energy_pj").unwrap();
            assert!((pj - observe::switch_energy_pj(bits)).abs() < 1e-9);
            cum += pj;
            assert!((e.arg_f64("energy_pj_cum").unwrap() - cum).abs() < 1e-9);
        }
        assert_eq!(
            rec.counter("sim.switch.bits_flipped"),
            dev.reconfig_energy().bits_flipped
        );
    }

    #[test]
    fn congestion_maps_expose_per_context_occupancy() {
        let circuits = vec![library::adder(4), library::multiplier(3)];
        let dev = MultiDevice::compile(&arch(), &circuits).unwrap();
        let maps = dev.congestion_maps();
        assert_eq!(maps.len(), 2);
        for (c, map) in maps.iter().enumerate() {
            assert_eq!(map, &dev.congestion_map(c).unwrap());
            assert!(!map.edges.is_empty(), "routed context uses edges");
            let total: usize = map.edges.iter().map(|e| e.occupancy).sum();
            assert_eq!(total, dev.routing_stats()[c].total_wirelength);
            assert!(map.peak_utilization() <= 1.0, "converged routing");
            assert!(!map.hottest(4).is_empty());
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use mcfpga_netlist::{random_netlist, RandomNetlistParams};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        /// Parallel compile produces a MultiDevice identical to serial
        /// compile across random workloads and seeds: same placements,
        /// routing trees, switch usage, logic-block assignment, and initial
        /// state.
        #[test]
        fn parallel_equals_serial_on_random_workloads(seed in 0u64..10_000, n_ctx in 1usize..=4) {
            let arch = ArchSpec::paper_default();
            let circuits: Vec<_> = (0..n_ctx)
                .map(|c| {
                    random_netlist(
                        RandomNetlistParams {
                            n_inputs: 6,
                            n_gates: 30,
                            n_outputs: 4,
                            dff_fraction: 0.1,
                        },
                        seed.wrapping_add(c as u64),
                    )
                })
                .collect();
            let serial = MultiDevice::compile_opts(
                &arch,
                &circuits,
                &CompileOptions { parallel: false, ..Default::default() },
                &Recorder::disabled(),
            );
            let parallel = MultiDevice::compile_opts(
                &arch,
                &circuits,
                &CompileOptions { parallel: true, ..Default::default() },
                &Recorder::disabled(),
            );
            match (serial, parallel) {
                (Ok(s), Ok(p)) => {
                    prop_assert_eq!(&s.mapped, &p.mapped);
                    prop_assert_eq!(&s.placements, &p.placements);
                    prop_assert_eq!(&s.routed, &p.routed);
                    prop_assert_eq!(&s.usage, &p.usage);
                    prop_assert_eq!(&s.site_of, &p.site_of);
                    prop_assert_eq!(&s.states, &p.states);
                    prop_assert_eq!(s.switch_bitstream(), p.switch_bitstream());
                }
                // Both paths must agree on failure too (first in-order error).
                (Err(se), Err(pe)) => prop_assert_eq!(se.to_string(), pe.to_string()),
                (s, p) => prop_assert!(
                    false,
                    "serial {:?} vs parallel {:?} disagree on success",
                    s.map(|_| ()), p.map(|_| ())
                ),
            }
        }
    }
}
