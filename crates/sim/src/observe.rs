//! Fabric observability: named signal probes sampled inside the batched
//! kernel, a per-LUT activity census with a dynamic-power proxy, and the
//! context-switch energy model.
//!
//! Probes are **lane-accurate**: each sample is one `u64` word holding all
//! [`LANES`] stimulus lanes of the probed signal at one clock
//! edge, exactly as the kernel computed it. Samples land in bounded
//! per-probe ring buffers (oldest first out), so probing a long run cannot
//! grow memory without bound. When no probes are armed the batched step
//! pays a single branch — the disabled path stays on the bit-identical
//! ~86M vectors/s contract.
//!
//! The census counts per-LUT output toggles and high cycles across lanes;
//! [`LutActivity::power_proxy`] multiplies the toggle rate by the LUT's
//! fanout — the classic `activity × capacitance` dynamic-power surrogate
//! with fanout standing in for load capacitance. The context-switch energy
//! model charges [`SWITCH_ENERGY_PJ_PER_BIT`] per flipped configuration
//! bit. **Both are proxy models with documented constants, not silicon
//! measurements** — they rank and compare, they do not predict joules.

use std::collections::VecDeque;

use mcfpga_map::{MappedNetlist, MappedSource};
use mcfpga_obs::Waveform;
use serde::{Deserialize, Serialize};

use crate::kernel::LANES;
use crate::multi::SimError;

/// Default bound on buffered samples per probe (words; one word = one clock
/// edge across all lanes). Override with [`ProbeSet::with_capacity`].
pub const DEFAULT_PROBE_CAPACITY: usize = 4096;

/// Energy charged per flipped configuration bit on a context switch, in
/// picojoules. A proxy constant in the range FeFET/BEOL config-write
/// literature reports (sub-pJ per bit) — chosen for stable relative
/// comparisons, **not** calibrated to any silicon process.
pub const SWITCH_ENERGY_PJ_PER_BIT: f64 = 0.18;

/// Switch energy, in picojoules, of flipping `bits_flipped` configuration
/// bits under the documented proxy constant.
pub fn switch_energy_pj(bits_flipped: u64) -> f64 {
    bits_flipped as f64 * SWITCH_ENERGY_PJ_PER_BIT
}

/// A named selection of fabric signals to sample during batched stepping.
///
/// Names resolve against one context's mapped netlist, in this order:
/// a primary-output name from the source netlist (probing whatever drives
/// it), `in{i}` for primary input `i`, `reg{i}` for register `i`, and
/// `lut{i}` for LUT `i`'s output. Unknown names are reported in-band by
/// [`crate::MultiDevice::arm_probes`].
///
/// ```
/// use mcfpga_sim::ProbeSet;
/// let set = ProbeSet::new().tap("sum0").tap("lut3").with_capacity(1024);
/// assert_eq!(set.taps().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeSet {
    taps: Vec<String>,
    capacity: usize,
}

impl Default for ProbeSet {
    fn default() -> Self {
        ProbeSet::new()
    }
}

impl ProbeSet {
    /// An empty set with the default per-probe ring capacity.
    pub fn new() -> ProbeSet {
        ProbeSet {
            taps: Vec::new(),
            capacity: DEFAULT_PROBE_CAPACITY,
        }
    }

    /// Add one signal by name (builder-style).
    pub fn tap(mut self, name: &str) -> ProbeSet {
        self.taps.push(name.to_string());
        self
    }

    /// Bound each probe's ring buffer to `capacity` sample words (min 1).
    pub fn with_capacity(mut self, capacity: usize) -> ProbeSet {
        self.capacity = capacity.max(1);
        self
    }

    pub fn taps(&self) -> &[String] {
        &self.taps
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn is_empty(&self) -> bool {
        self.taps.is_empty()
    }
}

/// What one armed probe reads inside the kernel step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProbeTarget {
    Input(usize),
    Register(usize),
    Lut(usize),
    Const(bool),
}

fn resolve_target(m: &MappedNetlist, name: &str) -> Option<ProbeTarget> {
    if let Some((_, src)) = m.outputs.iter().find(|(n, _)| n == name) {
        return Some(match *src {
            MappedSource::Input(i) => ProbeTarget::Input(i),
            MappedSource::Register(r) => ProbeTarget::Register(r),
            MappedSource::Lut(l) => ProbeTarget::Lut(l),
            MappedSource::Const(v) => ProbeTarget::Const(v),
        });
    }
    let indexed = |prefix: &str, bound: usize| -> Option<usize> {
        name.strip_prefix(prefix)
            .and_then(|d| d.parse::<usize>().ok())
            .filter(|&i| i < bound)
    };
    if let Some(i) = indexed("in", m.n_inputs) {
        return Some(ProbeTarget::Input(i));
    }
    if let Some(r) = indexed("reg", m.dffs.len()) {
        return Some(ProbeTarget::Register(r));
    }
    if let Some(l) = indexed("lut", m.luts.len()) {
        return Some(ProbeTarget::Lut(l));
    }
    None
}

/// Every name [`ProbeSet`] resolution accepts for `m`: declared outputs,
/// then `in*`, `reg*`, `lut*` index families.
pub(crate) fn probe_names(m: &MappedNetlist) -> Vec<String> {
    let mut names: Vec<String> = m.outputs.iter().map(|(n, _)| n.clone()).collect();
    names.extend((0..m.n_inputs).map(|i| format!("in{i}")));
    names.extend((0..m.dffs.len()).map(|r| format!("reg{r}")));
    names.extend((0..m.luts.len()).map(|l| format!("lut{l}")));
    names
}

/// One armed probe: target plus its bounded sample ring.
#[derive(Debug, Clone)]
struct ArmedProbe {
    name: String,
    target: ProbeTarget,
    ring: VecDeque<u64>,
    dropped: u64,
}

/// All armed probes of one context.
#[derive(Debug, Clone)]
pub(crate) struct ContextProbes {
    probes: Vec<ArmedProbe>,
    capacity: usize,
    /// Register words as they stood *before* the kernel's clock edge — the
    /// values the cycle's logic (and the outputs) actually saw. Snapshotted
    /// by [`ContextProbes::snapshot_regs`] because the kernel commits the
    /// next state in place.
    pre_regs: Vec<u64>,
}

impl ContextProbes {
    /// Resolve every tap of `set` against `m`, failing on the first unknown
    /// name (in tap order) so the error is deterministic.
    pub(crate) fn arm(
        m: &MappedNetlist,
        set: &ProbeSet,
        context: usize,
    ) -> Result<ContextProbes, SimError> {
        let probes = set
            .taps
            .iter()
            .map(|name| {
                resolve_target(m, name)
                    .map(|target| ArmedProbe {
                        name: name.clone(),
                        target,
                        ring: VecDeque::with_capacity(set.capacity.min(1 << 16)),
                        dropped: 0,
                    })
                    .ok_or_else(|| SimError::UnknownProbe {
                        context,
                        name: name.clone(),
                    })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ContextProbes {
            probes,
            capacity: set.capacity,
            pre_regs: Vec::new(),
        })
    }

    /// Snapshot the register words before the kernel commits the clock
    /// edge, so register probes can report the in-cycle (pre-edge) values.
    pub(crate) fn snapshot_regs(&mut self, regs: &[u64]) {
        self.pre_regs.clear();
        self.pre_regs.extend_from_slice(regs);
    }

    /// Record one sample word per probe for the step the kernel just ran.
    /// Register probes read the [`ContextProbes::snapshot_regs`] snapshot —
    /// the pre-edge values this cycle's logic saw; `lut_words` are the LUT
    /// output words the kernel just computed.
    pub(crate) fn sample(&mut self, inputs: &[u64], lut_words: &[u64]) {
        self.sample_wide(inputs, lut_words, 1);
    }

    /// As [`ContextProbes::sample`] at chunk width `w`: every buffer is
    /// signal-major with `w` words per signal, and each probe records all
    /// `w` words of its chunk — all `64 * w` lanes — per step. The ring
    /// capacity still counts words, so a width-`w` step consumes `w` slots.
    pub(crate) fn sample_wide(&mut self, inputs: &[u64], lut_words: &[u64], w: usize) {
        for p in &mut self.probes {
            for k in 0..w {
                let word = match p.target {
                    ProbeTarget::Input(i) => inputs[i * w + k],
                    ProbeTarget::Register(r) => self.pre_regs[r * w + k],
                    ProbeTarget::Lut(l) => lut_words[l * w + k],
                    ProbeTarget::Const(v) => {
                        if v {
                            u64::MAX
                        } else {
                            0
                        }
                    }
                };
                if p.ring.len() == self.capacity {
                    p.ring.pop_front();
                    p.dropped += 1;
                }
                p.ring.push_back(word);
            }
        }
    }

    pub(crate) fn captures(&self) -> Vec<ProbeCapture> {
        self.probes
            .iter()
            .map(|p| ProbeCapture {
                name: p.name.clone(),
                samples: p.ring.iter().copied().collect(),
                dropped: p.dropped,
            })
            .collect()
    }
}

/// One probe's buffered samples after a run: `samples[t]` is the probed
/// signal at retained clock edge `t`, one stimulus lane per bit. Runs at a
/// wider chunk width `W` record `W` consecutive words per retained edge
/// (`samples[t*W + w]` is chunk word `w`); use
/// [`ProbeCapture::lane_bits_wide`] to slice those.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeCapture {
    pub name: String,
    pub samples: Vec<u64>,
    /// Samples evicted from the bounded ring before these were read.
    pub dropped: u64,
}

impl ProbeCapture {
    /// Extract one stimulus lane as a scalar bit stream.
    pub fn lane_bits(&self, lane: usize) -> Vec<bool> {
        self.lane_bits_wide(1, lane)
    }

    /// Extract one of `64 * width` stimulus lanes from a capture recorded at
    /// chunk width `width`: lane `l` is bit `l % 64` of chunk word `l / 64`.
    pub fn lane_bits_wide(&self, width: usize, lane: usize) -> Vec<bool> {
        assert!(width > 0, "width must be positive");
        assert!(lane < LANES * width, "lane {lane} out of range");
        let (word, bit) = (lane / LANES, lane % LANES);
        self.samples
            .chunks_exact(width)
            .map(|c| (c[word] >> bit) & 1 == 1)
            .collect()
    }
}

/// Build a [`Waveform`] from probe captures: one 64-wide signal per probe
/// (bit = lane), or one 1-wide signal per probe when `lane` is given.
pub fn captures_to_waveform(
    module: &str,
    captures: &[ProbeCapture],
    lane: Option<usize>,
) -> Waveform {
    let mut w = Waveform::new(module);
    for c in captures {
        match lane {
            None => w.push_signal(&c.name, LANES, c.samples.clone()),
            Some(l) => {
                assert!(l < LANES, "lane {l} out of range");
                let bits: Vec<u64> = c.samples.iter().map(|&word| (word >> l) & 1).collect();
                w.push_signal(&c.name, 1, bits);
            }
        }
    }
    w
}

/// Per-LUT toggle/level accounting for one device, updated on the batched
/// path only (each step adds [`LANES`] lane-cycles to the active context).
#[derive(Debug, Clone, Default)]
pub(crate) struct ActivityCensus {
    /// `[context][lut]` — lane-summed output toggles, counted against the
    /// context's previous batched word (starting from all-zero, matching
    /// [`crate::Device`]'s toggle accounting).
    toggles: Vec<Vec<u64>>,
    /// `[context][lut]` — lane-cycles the output was high.
    ones: Vec<Vec<u64>>,
    prev: Vec<Vec<u64>>,
    lane_cycles: Vec<u64>,
}

impl ActivityCensus {
    pub(crate) fn new(n_contexts: usize) -> ActivityCensus {
        ActivityCensus {
            toggles: vec![Vec::new(); n_contexts],
            ones: vec![Vec::new(); n_contexts],
            prev: vec![Vec::new(); n_contexts],
            lane_cycles: vec![0; n_contexts],
        }
    }

    pub(crate) fn record(&mut self, c: usize, lut_words: &[u64]) {
        self.record_wide(c, lut_words, 1);
    }

    /// As [`ActivityCensus::record`] at chunk width `w`: `lut_words` holds
    /// `w` words per LUT (LUT-major), every one of the `64 * w` lanes counts
    /// toward toggles/ones, and the step adds `64 * w` lane-cycles. The
    /// previous-word baseline is per (LUT, chunk word); if the observed
    /// width changes between steps the baseline restarts at all-zero,
    /// matching the first-step convention.
    pub(crate) fn record_wide(&mut self, c: usize, lut_words: &[u64], w: usize) {
        let total = lut_words.len();
        let n = total / w;
        if self.prev[c].len() != total {
            self.prev[c].clear();
            self.prev[c].resize(total, 0);
        }
        self.toggles[c].resize(n, 0);
        self.ones[c].resize(n, 0);
        for i in 0..n {
            for k in 0..w {
                let word = lut_words[i * w + k];
                self.toggles[c][i] += (self.prev[c][i * w + k] ^ word).count_ones() as u64;
                self.ones[c][i] += word.count_ones() as u64;
                self.prev[c][i * w + k] = word;
            }
        }
        self.lane_cycles[c] += (LANES * w) as u64;
    }

    /// Roll context `c`'s counters into a report against `m` (for fanout).
    /// All rates are guarded: zero observed cycles (or a LUT-less netlist)
    /// yields zeros, never NaN.
    pub(crate) fn report(&self, c: usize, m: &MappedNetlist) -> ActivityReport {
        let fanout = lut_fanout(m);
        let cycles = self.lane_cycles[c];
        let luts: Vec<LutActivity> = (0..m.luts.len())
            .map(|i| {
                let toggles = self.toggles[c].get(i).copied().unwrap_or(0);
                let ones = self.ones[c].get(i).copied().unwrap_or(0);
                let rate = if cycles == 0 {
                    0.0
                } else {
                    toggles as f64 / cycles as f64
                };
                let static_probability = if cycles == 0 {
                    0.0
                } else {
                    ones as f64 / cycles as f64
                };
                LutActivity {
                    lut: i,
                    toggles,
                    toggle_rate: rate,
                    static_probability,
                    fanout: fanout[i],
                    power_proxy: rate * fanout[i] as f64,
                }
            })
            .collect();
        let toggles_total = luts.iter().map(|l| l.toggles).sum();
        ActivityReport {
            context: c,
            lane_cycles: cycles,
            toggles_total,
            luts,
        }
    }

    /// Mean per-LUT toggle rate of context `c`; 0.0 (never NaN) for
    /// zero-cycle or zero-LUT contexts.
    pub(crate) fn toggle_rate(&self, c: usize) -> f64 {
        let cycles = self.lane_cycles[c];
        let n_luts = self.toggles[c].len();
        if cycles == 0 || n_luts == 0 {
            return 0.0;
        }
        let total: u64 = self.toggles[c].iter().sum();
        total as f64 / (cycles as f64 * n_luts as f64)
    }
}

/// Consumers of LUT `i`'s output in `m`: other LUT inputs, primary
/// outputs, and register D pins — the load the power proxy scales by.
pub(crate) fn lut_fanout(m: &MappedNetlist) -> Vec<usize> {
    let mut fanout = vec![0usize; m.luts.len()];
    let mut feed = |src: &MappedSource| {
        if let MappedSource::Lut(l) = src {
            fanout[*l] += 1;
        }
    };
    for lut in &m.luts {
        lut.inputs.iter().for_each(&mut feed);
    }
    for (_, src) in &m.outputs {
        feed(src);
    }
    for dff in &m.dffs {
        feed(&dff.d);
    }
    fanout
}

/// One LUT's row in an [`ActivityReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LutActivity {
    pub lut: usize,
    /// Lane-summed output toggles.
    pub toggles: u64,
    /// `toggles / lane_cycles` — switching activity per lane-cycle.
    pub toggle_rate: f64,
    /// Fraction of lane-cycles the output was high.
    pub static_probability: f64,
    /// Downstream consumers (LUT inputs + outputs + register D pins).
    pub fanout: usize,
    /// `toggle_rate × fanout`: the dynamic-power surrogate used for
    /// ranking. Proxy units, not watts.
    pub power_proxy: f64,
}

/// Activity census of one context after a batched run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityReport {
    pub context: usize,
    /// Lane-cycles observed (batched steps × [`LANES`]).
    pub lane_cycles: u64,
    pub toggles_total: u64,
    pub luts: Vec<LutActivity>,
}

impl ActivityReport {
    /// LUTs ranked hottest-first by power proxy (ties: toggles, then index
    /// — fully deterministic for seeded workloads).
    pub fn ranked(&self) -> Vec<&LutActivity> {
        let mut rows: Vec<&LutActivity> = self.luts.iter().collect();
        rows.sort_by(|a, b| {
            b.power_proxy
                .partial_cmp(&a.power_proxy)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.toggles.cmp(&a.toggles))
                .then(a.lut.cmp(&b.lut))
        });
        rows
    }
}

/// Cumulative context-switch energy under the per-bit proxy model.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ReconfigEnergy {
    /// Context switches with energy accounting (traced or census-enabled).
    pub switches: u64,
    /// Total configuration bits flipped across those switches.
    pub bits_flipped: u64,
    /// `bits_flipped × `[`SWITCH_ENERGY_PJ_PER_BIT`] — cumulative, proxy pJ.
    pub energy_pj: f64,
    /// Mean flipped bits per switch (0.0 when no switches were accounted).
    pub mean_bits_per_switch: f64,
}

impl ReconfigEnergy {
    pub(crate) fn from_totals(switches: u64, bits_flipped: u64) -> ReconfigEnergy {
        ReconfigEnergy {
            switches,
            bits_flipped,
            energy_pj: switch_energy_pj(bits_flipped),
            mean_bits_per_switch: if switches == 0 {
                0.0
            } else {
                bits_flipped as f64 / switches as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfpga_map::map_netlist;
    use mcfpga_netlist::library;

    #[test]
    fn probe_set_builder_accumulates_taps() {
        let set = ProbeSet::new().tap("sum0").tap("in1").with_capacity(0);
        assert_eq!(set.taps(), ["sum0".to_string(), "in1".to_string()]);
        assert_eq!(set.capacity(), 1, "capacity clamps to at least one word");
        assert!(!set.is_empty());
    }

    #[test]
    fn targets_resolve_outputs_then_index_families() {
        let m = map_netlist(&library::adder(4), 6).unwrap();
        let (out_name, _) = &m.outputs[0];
        assert!(resolve_target(&m, out_name).is_some());
        assert_eq!(resolve_target(&m, "in0"), Some(ProbeTarget::Input(0)));
        assert_eq!(resolve_target(&m, "lut0"), Some(ProbeTarget::Lut(0)));
        assert_eq!(resolve_target(&m, "in99"), None);
        assert_eq!(resolve_target(&m, "nonsense"), None);
        let names = probe_names(&m);
        for n in &names {
            assert!(resolve_target(&m, n).is_some(), "{n} must resolve");
        }
    }

    #[test]
    fn ring_bounds_samples_and_counts_drops() {
        let m = map_netlist(&library::adder(2), 6).unwrap();
        let set = ProbeSet::new().tap("in0").with_capacity(2);
        let mut armed = ContextProbes::arm(&m, &set, 0).unwrap();
        let luts = vec![0u64; m.luts.len()];
        for i in 0..5u64 {
            let inputs = vec![i; m.n_inputs];
            armed.snapshot_regs(&[]);
            armed.sample(&inputs, &luts);
        }
        let cap = &armed.captures()[0];
        assert_eq!(cap.samples, vec![3, 4], "oldest samples evicted first");
        assert_eq!(cap.dropped, 3);
    }

    #[test]
    fn lane_bits_extracts_single_lanes() {
        let cap = ProbeCapture {
            name: "x".into(),
            samples: vec![0b01, 0b10],
            dropped: 0,
        };
        assert_eq!(cap.lane_bits(0), vec![true, false]);
        assert_eq!(cap.lane_bits(1), vec![false, true]);
    }

    #[test]
    fn census_rates_are_guarded_against_zero_cycles() {
        let m = map_netlist(&library::adder(2), 6).unwrap();
        let census = ActivityCensus::new(1);
        let report = census.report(0, &m);
        assert_eq!(report.lane_cycles, 0);
        assert!(report.luts.iter().all(|l| l.toggle_rate == 0.0));
        assert!(report.luts.iter().all(|l| !l.power_proxy.is_nan()));
        assert_eq!(census.toggle_rate(0), 0.0, "zero cycles must not NaN");
    }

    #[test]
    fn census_counts_toggles_and_ones_per_lut() {
        let mut census = ActivityCensus::new(1);
        census.record(0, &[u64::MAX, 0]);
        census.record(0, &[0, 0]);
        // LUT 0: 64 rising then 64 falling toggles, 64 high lane-cycles.
        assert_eq!(census.toggles[0][0], 128);
        assert_eq!(census.ones[0][0], 64);
        assert_eq!(census.toggles[0][1], 0);
        assert_eq!(census.lane_cycles[0], 2 * LANES as u64);
    }

    #[test]
    fn fanout_counts_all_consumer_kinds() {
        let m = map_netlist(&library::counter(3), 6).unwrap();
        let fanout = lut_fanout(&m);
        assert_eq!(fanout.len(), m.luts.len());
        let from_inputs: usize = m
            .luts
            .iter()
            .flat_map(|l| &l.inputs)
            .filter(|s| matches!(s, MappedSource::Lut(_)))
            .count();
        let from_outputs = m
            .outputs
            .iter()
            .filter(|(_, s)| matches!(s, MappedSource::Lut(_)))
            .count();
        let from_dffs = m
            .dffs
            .iter()
            .filter(|d| matches!(d.d, MappedSource::Lut(_)))
            .count();
        assert_eq!(
            fanout.iter().sum::<usize>(),
            from_inputs + from_outputs + from_dffs
        );
    }

    #[test]
    fn energy_model_is_linear_in_flipped_bits() {
        let e = ReconfigEnergy::from_totals(4, 100);
        assert_eq!(e.energy_pj, 100.0 * SWITCH_ENERGY_PJ_PER_BIT);
        assert_eq!(e.mean_bits_per_switch, 25.0);
        let zero = ReconfigEnergy::from_totals(0, 0);
        assert_eq!(zero.mean_bits_per_switch, 0.0, "guarded division");
    }

    #[test]
    fn ranked_orders_by_power_proxy_then_index() {
        let report = ActivityReport {
            context: 0,
            lane_cycles: 64,
            toggles_total: 30,
            luts: vec![
                LutActivity {
                    lut: 0,
                    toggles: 10,
                    toggle_rate: 0.2,
                    static_probability: 0.5,
                    fanout: 1,
                    power_proxy: 0.2,
                },
                LutActivity {
                    lut: 1,
                    toggles: 10,
                    toggle_rate: 0.2,
                    static_probability: 0.5,
                    fanout: 3,
                    power_proxy: 0.6,
                },
                LutActivity {
                    lut: 2,
                    toggles: 10,
                    toggle_rate: 0.2,
                    static_probability: 0.5,
                    fanout: 1,
                    power_proxy: 0.2,
                },
            ],
        };
        let ranked: Vec<usize> = report.ranked().iter().map(|l| l.lut).collect();
        assert_eq!(ranked, vec![1, 0, 2]);
    }
}
