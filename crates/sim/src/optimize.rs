//! Netlist-aware kernel optimizer: rewrite a lowered instruction stream into
//! a cheaper, bit-identical one.
//!
//! The generic kernel evaluates every k-input LUT as a `2^k - 1` chunk-op
//! mux-tree over its packed truth table. Real mapped netlists are full of
//! shapes that do not need that: LUTs fed by constants, LUTs that duplicate
//! one another, logic that no output or register ever observes, and — most
//! of all — tables that are plain AND/OR/XOR/NOT/BUF/MUX functions a couple
//! of machine instructions can compute directly. The optimizer runs four
//! passes over the stream, in order:
//!
//! 1. **Constant folding / canonicalization** — cofactor constant operands
//!    out of the table, drop operands the table does not depend on, tie
//!    duplicated operands, copy-propagate buffers and constants, and sort
//!    the operands of fully symmetric tables into canonical order.
//! 2. **Dedup + dead-code elimination** — structural hashing on the folded
//!    `(arity, operands, table)` form merges duplicate LUTs; a reverse sweep
//!    from the outputs and registers drops everything unobservable.
//! 3. **Level-preserving locality reorder** — instructions are regrouped by
//!    logic level and, within each level, ordered by their most recently
//!    produced operand, so consumers evaluate close to their producers while
//!    the topological contract is preserved by construction.
//! 4. **Shape specialization** — surviving tables that match direct forms
//!    are retagged with a specialized `Op`: 1-chunk-op AND/OR/XOR, their
//!    inverses, arbitrary 2-input functions, 3-input mux and majority, and
//!    wide AND/OR/parity chains. The packed table is kept semantically
//!    valid alongside the opcode, so a second optimization pass finds the
//!    stream already in canonical form — optimization is idempotent.
//!
//! Optimization never changes any lane of any output or register chunk (the
//! property tests drive random workloads through both kernels). It does
//! change instruction *positions*, which is why everything that addresses
//! LUT sites — signal probes, the activity census, the fault campaign —
//! runs on the unoptimized kernel by construction, and why optimized and
//! unoptimized serving artifacts hash to different design fingerprints.
//!
//! The pass is off by default ([`KernelOptions::optimize`] = `false`):
//! observability-heavy and fault-injection flows want the one-to-one
//! LUT-position correspondence, and the default keeps every existing
//! artifact bit-stable. Throughput-mode callers opt in per compile.

use crate::kernel::{CompiledKernel, KernelInstr, Op, Operand};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Kernel lowering knobs, threaded through `Device` / `MultiDevice` /
/// `Flow` / serve compile options. Serializable so session snapshots can
/// carry the full compile request across servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub struct KernelOptions {
    /// Run the optimizer pass on every compiled kernel. Off by default —
    /// see the module docs for the rationale.
    pub optimize: bool,
}

impl KernelOptions {
    pub fn new() -> KernelOptions {
        KernelOptions::default()
    }

    pub fn with_optimize(mut self, optimize: bool) -> KernelOptions {
        self.optimize = optimize;
        self
    }
}

/// What one optimization run did to a kernel — exact, seeded-run-stable
/// counts reported by the bench and gated by the regression checker.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptimizeStats {
    /// Instructions in the stream before / after.
    pub instrs_before: usize,
    pub instrs_after: usize,
    /// Chunk-ops one step costs before / after.
    pub word_ops_before: usize,
    pub word_ops_after: usize,
    /// Operands removed by constant folding, dependence pruning, and
    /// duplicate-operand tying.
    pub folded_operands: usize,
    /// Instructions merged into an earlier structural duplicate.
    pub deduped: usize,
    /// Instructions dropped as unobservable from any output or register.
    pub dead: usize,
    /// Surviving instructions retagged with a specialized opcode.
    pub specialized: usize,
}

impl CompiledKernel {
    /// Optimized copy of this kernel: bit-identical on every lane of every
    /// output and register chunk, usually far cheaper per step.
    pub fn optimize(&self) -> CompiledKernel {
        self.optimize_with_stats().0
    }

    /// [`CompiledKernel::optimize`], also reporting what the passes did.
    pub fn optimize_with_stats(&self) -> (CompiledKernel, OptimizeStats) {
        let mut stats = OptimizeStats {
            instrs_before: self.instrs.len(),
            word_ops_before: self.word_ops(),
            ..OptimizeStats::default()
        };

        // Pass 1: fold + canonicalize + dedup, building the substitution
        // `repr[original lut] -> operand in the new stream`.
        let mut repr: Vec<Operand> = Vec::with_capacity(self.instrs.len());
        let mut instrs: Vec<KernelInstr> = Vec::new();
        let mut dedup: HashMap<KernelInstr, u32> = HashMap::new();
        for instr in &self.instrs {
            let mut k = instr.n_ops as usize;
            let mut ops: Vec<Operand> = instr.ops[..k]
                .iter()
                .map(|&op| match op {
                    Operand::Lut(l) => repr[l as usize],
                    other => other,
                })
                .collect();
            let mut table = instr.table & table_mask(k);
            loop {
                if let Some(j) = ops.iter().position(|o| matches!(o, Operand::Const(_))) {
                    let v = matches!(ops[j], Operand::Const(true));
                    table = cofactor(table, k, j, v);
                    ops.remove(j);
                    k -= 1;
                    stats.folded_operands += 1;
                    continue;
                }
                if let Some(j) = (0..k).find(|&j| !depends_on(table, k, j)) {
                    table = cofactor(table, k, j, false);
                    ops.remove(j);
                    k -= 1;
                    stats.folded_operands += 1;
                    continue;
                }
                if let Some((i, j)) =
                    (0..k).find_map(|i| ((i + 1)..k).find(|&j| ops[j] == ops[i]).map(|j| (i, j)))
                {
                    table = tie_duplicate(table, k, i, j);
                    ops.remove(j);
                    k -= 1;
                    stats.folded_operands += 1;
                    continue;
                }
                break;
            }
            if k == 0 {
                repr.push(Operand::Const(table & 1 == 1));
                continue;
            }
            if k == 1 && table == 0b10 {
                // Buffer: copy-propagate the operand itself.
                repr.push(ops[0]);
                continue;
            }
            if fully_symmetric(table, k) {
                // Sorting the operands of a symmetric table leaves it valid
                // and makes commutative duplicates structurally equal.
                ops.sort();
            }
            let mut padded = [Operand::Const(false); 6];
            padded[..k].copy_from_slice(&ops);
            let ni = KernelInstr {
                ops: padded,
                n_ops: k as u8,
                table,
                op: Op::Table,
            };
            if let Some(&idx) = dedup.get(&ni) {
                stats.deduped += 1;
                repr.push(Operand::Lut(idx));
                continue;
            }
            let idx = instrs.len() as u32;
            dedup.insert(ni, idx);
            instrs.push(ni);
            repr.push(Operand::Lut(idx));
        }
        let subst = |op: Operand| match op {
            Operand::Lut(l) => repr[l as usize],
            other => other,
        };
        let outputs: Vec<Operand> = self.outputs.iter().map(|&o| subst(o)).collect();
        let dffs: Vec<Operand> = self.dffs.iter().map(|&d| subst(d)).collect();

        // Pass 2: dead-code elimination from the observable roots.
        let mut live = vec![false; instrs.len()];
        for &root in outputs.iter().chain(&dffs) {
            if let Operand::Lut(l) = root {
                live[l as usize] = true;
            }
        }
        for i in (0..instrs.len()).rev() {
            if live[i] {
                for &op in &instrs[i].ops[..instrs[i].n_ops as usize] {
                    if let Operand::Lut(l) = op {
                        live[l as usize] = true;
                    }
                }
            }
        }
        let mut remap = vec![u32::MAX; instrs.len()];
        let mut kept: Vec<KernelInstr> = Vec::with_capacity(instrs.len());
        for (i, mut instr) in instrs.into_iter().enumerate() {
            if !live[i] {
                stats.dead += 1;
                continue;
            }
            for op in &mut instr.ops[..instr.n_ops as usize] {
                if let Operand::Lut(l) = op {
                    *l = remap[*l as usize];
                }
            }
            remap[i] = kept.len() as u32;
            kept.push(instr);
        }
        let remap_root = |op: Operand| match op {
            Operand::Lut(l) => Operand::Lut(remap[l as usize]),
            other => other,
        };
        let outputs: Vec<Operand> = outputs.into_iter().map(remap_root).collect();
        let dffs: Vec<Operand> = dffs.into_iter().map(remap_root).collect();

        // Pass 3: level-preserving locality reorder. Levels are processed in
        // order and each level is stably sorted by the final position of its
        // most recently produced operand, so the transform is idempotent and
        // topological validity is preserved by construction.
        let mut level = vec![0u32; kept.len()];
        for i in 0..kept.len() {
            let mut lvl = 0;
            for &op in &kept[i].ops[..kept[i].n_ops as usize] {
                if let Operand::Lut(l) = op {
                    lvl = lvl.max(level[l as usize] + 1);
                }
            }
            level[i] = lvl;
        }
        let max_level = level.iter().copied().max().unwrap_or(0);
        let mut final_pos = vec![u32::MAX; kept.len()];
        let mut order: Vec<usize> = Vec::with_capacity(kept.len());
        for lvl in 0..=max_level {
            let mut members: Vec<usize> = (0..kept.len()).filter(|&i| level[i] == lvl).collect();
            members.sort_by_key(|&i| {
                kept[i].ops[..kept[i].n_ops as usize]
                    .iter()
                    .filter_map(|&op| match op {
                        Operand::Lut(l) => Some(final_pos[l as usize]),
                        _ => None,
                    })
                    .max()
                    .unwrap_or(0)
            });
            for i in members {
                final_pos[i] = order.len() as u32;
                order.push(i);
            }
        }
        let mut instrs: Vec<KernelInstr> = order
            .into_iter()
            .map(|i| {
                let mut instr = kept[i];
                for op in &mut instr.ops[..instr.n_ops as usize] {
                    if let Operand::Lut(l) = op {
                        *l = final_pos[*l as usize];
                    }
                }
                instr
            })
            .collect();
        let reorder_root = |op: Operand| match op {
            Operand::Lut(l) => Operand::Lut(final_pos[l as usize]),
            other => other,
        };
        let outputs: Vec<Operand> = outputs.into_iter().map(reorder_root).collect();
        let dffs: Vec<Operand> = dffs.into_iter().map(reorder_root).collect();

        // Pass 4: shape specialization.
        for instr in &mut instrs {
            if specialize(instr) {
                stats.specialized += 1;
            }
        }

        let kernel = CompiledKernel {
            n_inputs: self.n_inputs,
            n_regs: self.n_regs,
            instrs,
            outputs,
            dffs,
            optimized: true,
        };
        stats.instrs_after = kernel.instrs.len();
        stats.word_ops_after = kernel.word_ops();
        (kernel, stats)
    }
}

/// Mask covering the `2^k` meaningful bits of a k-input table.
fn table_mask(k: usize) -> u64 {
    let bits = 1usize << k;
    if bits >= 64 {
        !0
    } else {
        (1u64 << bits) - 1
    }
}

/// Restrict operand `j` to the constant `v`: the table over the remaining
/// `k - 1` operands.
fn cofactor(table: u64, k: usize, j: usize, v: bool) -> u64 {
    let mut nt = 0u64;
    for a in 0..(1usize << (k - 1)) {
        let low = a & ((1 << j) - 1);
        let high = (a >> j) << (j + 1);
        let full = high | ((v as usize) << j) | low;
        nt |= ((table >> full) & 1) << a;
    }
    nt
}

/// Tie operand `j` to operand `i` (`j > i`): the table over the remaining
/// `k - 1` operands with address bit `j` always equal to bit `i`.
fn tie_duplicate(table: u64, k: usize, i: usize, j: usize) -> u64 {
    let mut nt = 0u64;
    for a in 0..(1usize << (k - 1)) {
        let vi = (a >> i) & 1;
        let low = a & ((1 << j) - 1);
        let high = (a >> j) << (j + 1);
        let full = high | (vi << j) | low;
        nt |= ((table >> full) & 1) << a;
    }
    nt
}

/// Does the table's output ever change with operand `j`?
fn depends_on(table: u64, k: usize, j: usize) -> bool {
    (0..(1usize << k))
        .any(|a| (a >> j) & 1 == 0 && ((table >> a) ^ (table >> (a | (1 << j)))) & 1 == 1)
}

/// Swap address bits `j` and `j + 1` of every table entry.
fn swap_adjacent(table: u64, k: usize, j: usize) -> u64 {
    let mut nt = 0u64;
    for a in 0..(1usize << k) {
        let bi = (a >> j) & 1;
        let bj = (a >> (j + 1)) & 1;
        let sw = (a & !((1 << j) | (1 << (j + 1)))) | (bj << j) | (bi << (j + 1));
        nt |= ((table >> a) & 1) << sw;
    }
    nt
}

/// Invariant under every adjacent operand transposition (which generate the
/// full symmetric group), so the operands may be freely reordered.
fn fully_symmetric(table: u64, k: usize) -> bool {
    k >= 2 && (0..k - 1).all(|j| swap_adjacent(table, k, j) == table)
}

/// Table of the k-input AND (only the all-ones address is true).
fn and_table(k: usize) -> u64 {
    1u64 << ((1usize << k) - 1)
}

/// Table of the k-input OR (everything but address 0 is true).
fn or_table(k: usize) -> u64 {
    table_mask(k) ^ 1
}

/// Table of the k-input parity.
fn xor_table(k: usize) -> u64 {
    (0..(1usize << k))
        .filter(|a: &usize| a.count_ones() % 2 == 1)
        .fold(0u64, |t, a| t | (1u64 << a))
}

/// Table of `sel ? x_d1 : x_d0` over 3 operands at positions `(d0, d1, s)`.
fn mux_table(d0: usize, d1: usize, s: usize) -> u64 {
    let mut t = 0u64;
    for a in 0..8usize {
        let v = if (a >> s) & 1 == 1 {
            (a >> d1) & 1
        } else {
            (a >> d0) & 1
        };
        t |= (v as u64) << a;
    }
    t
}

/// Retag one folded instruction with a direct opcode when its table matches
/// a recognized shape. The canonical mux position is probed first so an
/// already-specialized stream is left untouched. Returns whether the
/// instruction ended up specialized.
fn specialize(instr: &mut KernelInstr) -> bool {
    let k = instr.n_ops as usize;
    let m = table_mask(k);
    let t = instr.table & m;
    instr.op = match k {
        0 => Op::Const,
        1 if t == 0b10 => Op::Buf,
        1 if t == 0b01 => Op::Not,
        1 => Op::Table,
        2 => Op::Logic2(t as u8),
        _ if t == and_table(k) => Op::AndAll { invert: false },
        _ if t == m & !and_table(k) => Op::AndAll { invert: true },
        _ if t == or_table(k) => Op::OrAll { invert: false },
        _ if t == m & !or_table(k) => Op::OrAll { invert: true },
        _ if t == xor_table(k) => Op::XorAll { invert: false },
        _ if t == m & !xor_table(k) => Op::XorAll { invert: true },
        3 if t == 0xE8 => Op::Maj3,
        3 => {
            let mut found = Op::Table;
            'probe: for s in [2usize, 1, 0] {
                let (r0, r1) = match s {
                    2 => (0, 1),
                    1 => (0, 2),
                    _ => (1, 2),
                };
                for (d0, d1) in [(r0, r1), (r1, r0)] {
                    if t == mux_table(d0, d1, s) {
                        let o = instr.ops;
                        instr.ops[0] = o[d0];
                        instr.ops[1] = o[d1];
                        instr.ops[2] = o[s];
                        instr.table = mux_table(0, 1, 2);
                        found = Op::MuxSel2;
                        break 'probe;
                    }
                }
            }
            found
        }
        _ => Op::Table,
    };
    !matches!(instr.op, Op::Table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelScratch;
    use mcfpga_map::MappedSource;
    use rand::rngs::StdRng;
    use rand::{Rng, RngCore, SeedableRng};

    /// A random levelized kernel: each LUT draws operands from inputs,
    /// registers, constants, and earlier LUTs; outputs and DFF sources tap
    /// random signals.
    fn random_kernel(seed: u64) -> CompiledKernel {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_inputs = rng.gen_range(1..5usize);
        let n_regs = rng.gen_range(0..4usize);
        let n_luts = rng.gen_range(1..40usize);
        let mut luts: Vec<(Vec<MappedSource>, u64)> = Vec::new();
        let pick = |rng: &mut StdRng, lut_count: usize| -> MappedSource {
            let n_choices = if lut_count > 0 { 5 } else { 4 };
            match rng.gen_range(0..n_choices) {
                0 | 3 => MappedSource::Input(rng.gen_range(0..n_inputs)),
                1 if n_regs > 0 => MappedSource::Register(rng.gen_range(0..n_regs)),
                1 => MappedSource::Input(rng.gen_range(0..n_inputs)),
                2 => MappedSource::Const(rng.gen_bool(0.5)),
                _ => MappedSource::Lut(rng.gen_range(0..lut_count)),
            }
        };
        for l in 0..n_luts {
            let k = rng.gen_range(0..=4usize);
            let srcs: Vec<MappedSource> = (0..k).map(|_| pick(&mut rng, l)).collect();
            // Bias toward specializable shapes half the time.
            let table = if rng.gen_bool(0.5) && k >= 2 {
                match rng.gen_range(0..3) {
                    0 => and_table(k),
                    1 => or_table(k),
                    _ => xor_table(k),
                }
            } else {
                rng.next_u64() & table_mask(k)
            };
            luts.push((srcs, table));
        }
        let n_outputs = rng.gen_range(1..4usize);
        let outputs: Vec<MappedSource> = (0..n_outputs).map(|_| pick(&mut rng, n_luts)).collect();
        let dffs: Vec<MappedSource> = (0..n_regs).map(|_| pick(&mut rng, n_luts)).collect();
        CompiledKernel::build(
            n_inputs,
            n_regs,
            luts.iter().map(|(s, t)| (s.as_slice(), *t)),
            outputs.into_iter(),
            dffs.into_iter(),
        )
    }

    fn run(kernel: &CompiledKernel, seed: u64, steps: usize) -> (Vec<Vec<u64>>, Vec<u64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut regs = vec![0u64; kernel.n_regs()];
        for r in &mut regs {
            *r = rng.next_u64();
        }
        let mut scratch = KernelScratch::new();
        let mut outs = Vec::new();
        for _ in 0..steps {
            let inputs: Vec<u64> = (0..kernel.n_inputs()).map(|_| rng.next_u64()).collect();
            let mut out = Vec::new();
            kernel.step(&inputs, &mut regs, &mut scratch, &mut out);
            outs.push(out);
        }
        (outs, regs)
    }

    #[test]
    fn optimized_kernel_is_bit_identical_on_random_streams() {
        for seed in 0..150u64 {
            let kernel = random_kernel(seed);
            let (opt, stats) = kernel.optimize_with_stats();
            assert!(opt.optimized());
            assert!(
                stats.word_ops_after <= stats.word_ops_before,
                "seed {seed}: optimizer made the kernel more expensive: {stats:?}"
            );
            let (want_out, want_regs) = run(&kernel, seed ^ 0xABCD, 12);
            let (got_out, got_regs) = run(&opt, seed ^ 0xABCD, 12);
            assert_eq!(got_out, want_out, "seed {seed}: outputs diverged");
            assert_eq!(got_regs, want_regs, "seed {seed}: registers diverged");
        }
    }

    #[test]
    fn optimizing_twice_is_the_same_as_once() {
        for seed in 0..150u64 {
            let once = random_kernel(seed).optimize();
            let (twice, stats) = once.optimize_with_stats();
            assert_eq!(twice, once, "seed {seed}: optimize is not idempotent");
            assert_eq!(stats.folded_operands, 0, "seed {seed}");
            assert_eq!(stats.deduped, 0, "seed {seed}");
            assert_eq!(stats.dead, 0, "seed {seed}");
        }
    }

    #[test]
    fn constant_operands_fold_through_the_stream() {
        // lut0 = AND(in0, const0) = 0; lut1 = OR(in0, lut0) = in0 (buffer);
        // output taps lut1 -> folds to Input(0) directly, zero instructions.
        let kernel = CompiledKernel::build(
            1,
            0,
            [
                (
                    &[MappedSource::Input(0), MappedSource::Const(false)][..],
                    0b1000u64,
                ),
                (
                    &[MappedSource::Input(0), MappedSource::Lut(0)][..],
                    0b1110u64,
                ),
            ]
            .into_iter(),
            std::iter::once(MappedSource::Lut(1)),
            std::iter::empty(),
        );
        let (opt, stats) = kernel.optimize_with_stats();
        assert_eq!(opt.n_instrs(), 0);
        assert_eq!(stats.instrs_after, 0);
        let (want, _) = run(&kernel, 7, 4);
        let (got, _) = run(&opt, 7, 4);
        assert_eq!(got, want);
    }

    #[test]
    fn duplicate_and_dead_luts_are_eliminated() {
        // lut0 and lut1 are identical XORs (lut1 with commuted operands);
        // lut2 consumes both (so dedup ties them), lut3 is dead.
        let xor = 0b0110u64;
        let kernel = CompiledKernel::build(
            2,
            0,
            [
                (&[MappedSource::Input(0), MappedSource::Input(1)][..], xor),
                (&[MappedSource::Input(1), MappedSource::Input(0)][..], xor),
                (&[MappedSource::Lut(0), MappedSource::Lut(1)][..], 0b1000u64),
                (
                    &[MappedSource::Input(0), MappedSource::Input(1)][..],
                    0b0001u64,
                ),
            ]
            .into_iter(),
            std::iter::once(MappedSource::Lut(2)),
            std::iter::empty(),
        );
        let (opt, stats) = kernel.optimize_with_stats();
        assert_eq!(stats.deduped, 1, "{stats:?}");
        assert_eq!(stats.dead, 1, "{stats:?}");
        // AND(x, x) ties to a buffer of the shared XOR: one instruction.
        assert_eq!(opt.n_instrs(), 1, "{stats:?}");
        let (want, _) = run(&kernel, 11, 4);
        let (got, _) = run(&opt, 11, 4);
        assert_eq!(got, want);
    }

    #[test]
    fn specialization_recognizes_the_direct_shapes() {
        let cases: Vec<(usize, u64, Op)> = vec![
            (2, 0b1000, Op::Logic2(0b1000)),
            (3, and_table(3), Op::AndAll { invert: false }),
            (
                4,
                table_mask(4) & !and_table(4),
                Op::AndAll { invert: true },
            ),
            (3, or_table(3), Op::OrAll { invert: false }),
            (4, xor_table(4), Op::XorAll { invert: false }),
            (3, 0xE8, Op::Maj3),
            (3, mux_table(0, 1, 2), Op::MuxSel2),
        ];
        for (k, table, want) in cases {
            let mut ops = [Operand::Const(false); 6];
            for (i, op) in ops.iter_mut().enumerate().take(k) {
                *op = Operand::Input(i as u32);
            }
            let mut instr = KernelInstr {
                ops,
                n_ops: k as u8,
                table,
                op: Op::Table,
            };
            assert!(specialize(&mut instr), "k={k} table={table:#x}");
            assert_eq!(instr.op, want, "k={k} table={table:#x}");
        }
    }

    #[test]
    fn mux_detection_canonicalizes_any_selector_position() {
        // sel in operand position 0: t[a] = a0 ? x2 : x1.
        let t = mux_table(1, 2, 0);
        let mut instr = KernelInstr {
            ops: [
                Operand::Input(9),
                Operand::Input(5),
                Operand::Input(7),
                Operand::Const(false),
                Operand::Const(false),
                Operand::Const(false),
            ],
            n_ops: 3,
            table: t,
            op: Op::Table,
        };
        assert!(specialize(&mut instr));
        assert_eq!(instr.op, Op::MuxSel2);
        assert_eq!(instr.table, mux_table(0, 1, 2));
        // ops = [d0, d1, sel] = [x1, x2, x0].
        assert_eq!(
            &instr.ops[..3],
            &[Operand::Input(5), Operand::Input(7), Operand::Input(9)]
        );
    }
}
