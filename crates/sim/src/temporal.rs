//! Temporal execution on the fabric: a circuit too big for the array runs
//! across contexts, transfer registers carrying values between stages —
//! the DPGA story of the paper's introduction, demonstrated on the
//! compiled device.
//!
//! Each stage of a [`TemporalDesign`] is an ordinary mapped netlist, so the
//! heterogeneous [`MultiDevice`] hosts one stage per context. A macro-cycle
//! activates the contexts in order; between steps the executor shuttles the
//! shared transfer-register file into and out of the active context's
//! register state (physically these are the same logic-block flip-flops —
//! per-stage register *placement* coupling is not modelled; the register
//! file is the architectural contract).

use mcfpga_map::{TemporalDesign, TemporalOutput};

use crate::multi::MultiDevice;

/// Driver for one temporal design on a compiled device.
pub struct FabricTemporalExecutor<'a> {
    device: &'a mut MultiDevice,
    design: TemporalDesign,
    regs: Vec<bool>,
}

impl<'a> FabricTemporalExecutor<'a> {
    /// The device must have been compiled from `design.stages[..].netlist`
    /// in stage order (see [`MultiDevice::compile_mapped`]).
    pub fn new(device: &'a mut MultiDevice, design: TemporalDesign) -> Self {
        assert_eq!(
            device.n_circuits(),
            design.stages.len(),
            "device contexts must be the design's stages"
        );
        let regs = vec![false; design.n_registers];
        FabricTemporalExecutor {
            device,
            design,
            regs,
        }
    }

    /// One macro-cycle through all contexts.
    pub fn run(&mut self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.design.n_inputs, "input arity");
        for (s, stage) in self.design.stages.iter().enumerate() {
            // Load this stage's register view into the context's state.
            let view: Vec<bool> = stage.registers.iter().map(|&g| self.regs[g]).collect();
            self.device.set_registers(s, &view);
            self.device.switch_context(s);
            let _ = self.device.step(inputs);
            // Commit the context's registers back to the shared file.
            let after = self.device.registers(s).to_vec();
            for (slot, &g) in stage.registers.iter().enumerate() {
                self.regs[g] = after[slot];
            }
        }
        self.design
            .outputs
            .iter()
            .map(|(_, out)| match out {
                TemporalOutput::Register(g) => self.regs[*g],
                TemporalOutput::Input(p) => inputs[*p],
                TemporalOutput::Const(c) => *c,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfpga_arch::ArchSpec;
    use mcfpga_map::{map_netlist, temporal_partition};
    use mcfpga_netlist::library;
    use mcfpga_place::PlacementProblem;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The headline demonstration: a 3-bit multiplier that cannot fit a
    /// 3x3 single-context fabric runs correctly across its 4 contexts.
    #[test]
    fn oversized_multiplier_runs_across_contexts() {
        let arch = ArchSpec::paper_default().with_grid(3, 3);
        let circuit = library::multiplier(3);
        let mapped = map_netlist(&circuit, arch.lut.min_inputs).unwrap();

        // Too big for one context: placement must reject it.
        assert!(
            PlacementProblem::from_mapped(&mapped, &arch).is_err(),
            "mul3 ({} LUTs) must overflow the 3x3 array",
            mapped.luts.len()
        );

        // Temporal split into <= 4 stages, each within the array capacity.
        let capacity = arch.n_logic_blocks() * arch.lut.outputs;
        let design = temporal_partition(&mapped, capacity).unwrap();
        assert!(design.n_stages() <= arch.n_contexts);
        let stage_netlists: Vec<_> = design.stages.iter().map(|s| s.netlist.clone()).collect();
        let mut dev = MultiDevice::compile_mapped(&arch, &stage_netlists).unwrap();
        let mut exec = FabricTemporalExecutor::new(&mut dev, design);

        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..40 {
            let inputs: Vec<bool> = (0..6).map(|_| rng.gen_bool(0.5)).collect();
            let expect = circuit.eval_comb(&inputs).unwrap();
            assert_eq!(exec.run(&inputs), expect);
        }
    }

    #[test]
    fn fabric_and_reference_executors_agree() {
        use mcfpga_map::TemporalExecutor;
        let arch = ArchSpec::paper_default().with_grid(4, 4);
        let circuit = library::alu(4);
        let mapped = map_netlist(&circuit, arch.lut.min_inputs).unwrap();
        let capacity = 12; // force several stages
        let design = temporal_partition(&mapped, capacity).unwrap();
        let stage_netlists: Vec<_> = design.stages.iter().map(|s| s.netlist.clone()).collect();
        let mut dev = MultiDevice::compile_mapped(&arch, &stage_netlists).unwrap();
        let mut fabric = FabricTemporalExecutor::new(&mut dev, design.clone());
        let mut reference = TemporalExecutor::new(design);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..30 {
            let inputs: Vec<bool> = (0..10).map(|_| rng.gen_bool(0.5)).collect();
            assert_eq!(fabric.run(&inputs), reference.run(&inputs));
        }
    }
}
