//! Explore the Section 5 area model: sweep change rate, context count and
//! technology, and print the proposed/conventional ratios with their
//! component breakdowns.
//!
//! ```sh
//! cargo run --example area_explorer
//! cargo run --example area_explorer -- 0.03   # custom change rate
//! ```

use mcfpga::area::{area_comparison, static_power, PowerParams};
use mcfpga::prelude::*;

fn main() {
    let params = AreaParams::paper_default();
    let weights = FabricWeights::default();
    let custom_rate: Option<f64> = std::env::args().nth(1).and_then(|s| s.parse().ok());

    println!("area model constants (unit transistors): {params:#?}\n");

    // The paper's headline point.
    let eval = evaluate_paper_point();
    println!("=== Section 5 headline (4 contexts, 5% change) ===");
    println!(
        "CMOS: proposed/conventional = {:.3}   (paper: 0.45)",
        eval.cmos.ratio
    );
    println!(
        "FePG: proposed/conventional = {:.3}   (paper: 0.37)\n",
        eval.fepg.ratio
    );

    // Sweep change rate.
    let arch = ArchSpec::paper_default();
    println!("=== ratio vs change rate (4 contexts) ===");
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>12}",
        "rate", "CMOS", "FePG", "switch part", "LB part"
    );
    let mut rates = vec![0.0, 0.01, 0.03, 0.05, 0.10, 0.20, 0.30, 0.50];
    if let Some(r) = custom_rate {
        rates.push(r);
        rates.sort_by(f64::total_cmp);
    }
    for r in rates {
        let cmos = area_comparison(&arch, r, Technology::Cmos, &params, &weights);
        let fepg = area_comparison(&arch, r, Technology::Fepg, &params, &weights);
        println!(
            "{:>5.0}% {:>10.3} {:>10.3} {:>12.3} {:>12.3}",
            r * 100.0,
            cmos.ratio,
            fepg.ratio,
            cmos.proposed_switches / cmos.conventional_switches,
            cmos.proposed_lb / cmos.conventional_lb,
        );
    }

    // Sweep context count.
    println!("\n=== ratio vs context count (5% change) ===");
    println!("{:>9} {:>10} {:>10}", "contexts", "CMOS", "FePG");
    for n in [2usize, 4, 8] {
        let a = arch.clone().with_contexts(n);
        let cmos = area_comparison(&a, 0.05, Technology::Cmos, &params, &weights);
        let fepg = area_comparison(&a, 0.05, Technology::Fepg, &params, &weights);
        println!("{n:>9} {:>10.3} {:>10.3}", cmos.ratio, fepg.ratio);
    }

    // Static power.
    println!("\n=== static power (configuration storage leakage) ===");
    let power_params = PowerParams::default();
    for (label, tech) in [
        ("CMOS RCM", Technology::Cmos),
        ("FePG RCM", Technology::Fepg),
    ] {
        let rep = static_power(&arch, 0.05, tech, &power_params, &weights);
        println!(
            "{label}: proposed/conventional = {:.3} ({:.1} vs {:.1} units/cell)",
            rep.ratio, rep.proposed, rep.conventional
        );
    }
    println!("\nFePG storage is non-volatile ferroelectric: the remaining leakage is");
    println!("only the SRAM LUT planes, which sharing has already shrunk.");
}
