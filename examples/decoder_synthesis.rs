//! RCM decoder synthesis, pattern by pattern: the machinery of Figs. 3-5
//! and 9, shown live.
//!
//! Prints every 4-context configuration pattern with its class, the
//! synthesised decoder tree, and its switch-element cost; then synthesises
//! decoders for a random column stream at several change rates to show how
//! redundancy turns into area.
//!
//! ```sh
//! cargo run --example decoder_synthesis
//! ```

use mcfpga::config::{classify, random_column, ColumnSetStats};
use mcfpga::prelude::*;
use mcfpga::rcm::DecoderNode;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn describe(node: &DecoderNode) -> String {
    match node {
        DecoderNode::Constant(v) => format!("const {}", u8::from(*v)),
        DecoderNode::IdBit { bit, inverted } => {
            format!("{}S{bit}", if *inverted { "!" } else { "" })
        }
        DecoderNode::Mux { sel_bit, hi, lo } => {
            format!("S{sel_bit} ? ({}) : ({})", describe(hi), describe(lo))
        }
    }
}

fn main() {
    let ctx = ContextId::new(4).unwrap();
    println!("context-ID encoding (Table 2):\n{}", ctx.table_string());

    println!("all 16 patterns (C3 C2 C1 C0), their class, decoder and SE cost:");
    println!(
        "{:<8} {:<22} {:<28} {:>3}",
        "pattern", "class", "decoder", "SEs"
    );
    let mut census = [0usize; 3];
    for col in ConfigColumn::enumerate_all(4) {
        let class = classify(col, ctx);
        let prog = synthesize(col, ctx);
        let cost = prog.cost();
        // Check the lowered netlist really reproduces the column.
        for c in 0..4 {
            assert_eq!(prog.eval(ctx, c), col.value_in(c));
        }
        let idx = match class {
            PatternClass::Constant { .. } => 0,
            PatternClass::SingleBit { .. } => 1,
            PatternClass::General => 2,
        };
        census[idx] += 1;
        println!(
            "{:<8} {:<22} {:<28} {:>3}",
            col.pattern_string(),
            class.figure(),
            describe(&prog.tree),
            cost.n_ses
        );
    }
    println!(
        "\ncensus: {} constant (Fig.3), {} single-bit (Fig.4), {} general (Fig.5)",
        census[0], census[1], census[2]
    );

    println!("\nsynthesising 10_000 random columns at various change rates:");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>8}",
        "rate", "constant%", "cheap%", "E[SEs]", "worstSE"
    );
    for rate in [0.0, 0.03, 0.05, 0.10, 0.25, 0.50] {
        let mut rng = StdRng::seed_from_u64(7);
        let cols: Vec<ConfigColumn> = (0..10_000)
            .map(|_| random_column(ctx, rate, &mut rng))
            .collect();
        let stats = ColumnSetStats::measure(&cols, ctx);
        let costs: Vec<usize> = cols
            .iter()
            .map(|c| synthesize(*c, ctx).cost().n_ses)
            .collect();
        let mean = costs.iter().sum::<usize>() as f64 / costs.len() as f64;
        let worst = costs.iter().max().unwrap();
        println!(
            "{:>5.0}% {:>9.1}% {:>9.1}% {:>10.3} {:>8}",
            rate * 100.0,
            100.0 * stats.constant_fraction(),
            100.0 * stats.cheap_fraction(),
            mean,
            worst
        );
    }
    println!("\nat the paper's 5% change rate, ~90% of columns need a single SE");
    println!("(vs 4 memory bits + a 4:1 mux per bit in a conventional MC-FPGA)");
}
