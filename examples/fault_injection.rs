//! Configuration-upset fault injection on a compiled device.
//!
//! Multi-context FPGAs carry far more configuration state than their
//! single-context siblings, so upsets matter. This example compiles a
//! workload, injects single-bit faults into LUT configuration planes, and
//! shows which are caught by randomized equivalence checking — and why the
//! silent ones are silent (dormant planes, don't-care assignments).
//!
//! ```sh
//! cargo run --example fault_injection
//! ```

use mcfpga::netlist::{library, workload, RandomNetlistParams};
use mcfpga::prelude::*;
use mcfpga::sim::{lut_fault_campaign, LutFault};

fn main() {
    let arch = ArchSpec::paper_default();

    // Part 1: a targeted upset in live logic is always visible.
    println!("targeted upset in live logic:");
    let circuits = vec![library::parity(8); 4];
    let mut dev = Device::compile(&arch, &circuits).expect("compile");
    let fault = LutFault {
        lb: 0,
        output: 0,
        plane: 0,
        assignment: 3,
    };
    dev.inject_lut_fault(fault);
    match check_device_equivalence(&mut dev, &circuits, 200, 5) {
        Err(e) => println!("  detected: {e}"),
        Ok(()) => println!("  NOT detected (unexpected for a XOR table)"),
    }
    dev.clear_lut_fault(fault);
    dev.reset();
    check_device_equivalence(&mut dev, &circuits, 100, 5).expect("repaired");
    println!("  repaired by flipping the bit back; device verifies again\n");

    // Part 2: an upset on a dormant plane can never be observed.
    println!("upset on a dormant plane (fully shared workload uses plane 0 only):");
    let adders = vec![library::adder(4); 4];
    let mut dev = Device::compile(&arch, &adders).expect("compile");
    dev.inject_lut_fault(LutFault {
        lb: 0,
        output: 0,
        plane: 3,
        assignment: 0,
    });
    match check_device_equivalence(&mut dev, &adders, 200, 7) {
        Ok(()) => println!("  silent, as expected: plane 3 is never selected\n"),
        Err(e) => println!("  unexpectedly visible: {e}\n"),
    }

    // Part 3: a statistical campaign.
    println!("random campaign (60 upsets, 150 random cycles each):");
    let w = workload(
        RandomNetlistParams {
            n_inputs: 6,
            n_gates: 40,
            n_outputs: 6,
            dff_fraction: 0.0,
        },
        4,
        0.1,
        77,
    );
    let mut dev = Device::compile(&arch, &w).expect("compile");
    let report = lut_fault_campaign(&mut dev, &w, 60, 150, 42);
    println!(
        "  injected {}  detected {}  silent {}  (rate {:.0}%)",
        report.injected,
        report.detected,
        report.silent,
        100.0 * report.detection_rate()
    );
    println!("  silent upsets hide in unused planes and unexercised LUT rows;");
    println!("  structural upsets (routing switches, RCM decoders) are caught");
    println!("  without stimulus by Device::check_routing.");
}
