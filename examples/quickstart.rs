//! Quickstart: compile two circuits onto a 4-context device, run them, and
//! switch contexts at runtime.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use mcfpga::netlist::library;
use mcfpga::netlist::words::{bits_to_u64, u64_to_bits};
use mcfpga::prelude::*;

fn main() {
    // The paper's evaluation architecture: 8x8 cells, 4 contexts, 6-input
    // 2-output MCMG-LUTs, channels with double-length lines.
    let arch = ArchSpec::paper_default();
    println!(
        "architecture: {:?} grid, {} contexts",
        arch.grid, arch.n_contexts
    );

    // Two independent circuits, one per context. Compiling through an
    // enabled Recorder collects per-phase wall-clock spans for free.
    let recorder = Recorder::enabled();
    let circuits = vec![library::adder(4), library::comparator(4)];
    let mut device = MultiDevice::compile_with(&arch, &circuits, &recorder).expect("compile");
    device
        .check_routing()
        .expect("switch state connects every net");

    // Context 0: the adder. Inputs are a[0..4], b[0..4], cin.
    device.switch_context(0);
    for (a, b) in [(3u64, 4u64), (9, 8), (15, 15)] {
        let mut inputs = u64_to_bits(a, 4);
        inputs.extend(u64_to_bits(b, 4));
        inputs.push(false);
        let out = device.step(&inputs);
        let sum = bits_to_u64(&out[..4]) + ((out[4] as u64) << 4);
        println!("context 0 (adder):      {a:2} + {b:2} = {sum}");
        assert_eq!(sum, a + b);
    }

    // One-cycle context switch: same fabric, now a comparator.
    device.switch_context(1);
    for (a, b) in [(3u64, 4u64), (9, 8), (15, 15)] {
        let mut inputs = u64_to_bits(a, 4);
        inputs.extend(u64_to_bits(b, 4));
        let out = device.step(&inputs);
        let rel = if out[0] {
            "=="
        } else if out[1] {
            "<"
        } else {
            ">"
        };
        println!("context 1 (comparator): {a:2} {rel} {b:2}");
    }

    // What the configuration data looks like across contexts.
    let stats = mcfpga::config::ColumnSetStats::measure(
        &device.switch_usage().columns(),
        arch.context_id(),
    );
    println!("\nswitch configuration columns: {}", stats.table_string());

    // Where the compile time went, phase by phase.
    let report = recorder.report("quickstart");
    println!("\ncompile phase timings:");
    for phase in ["map", "place", "route", "columns", "logic_blocks"] {
        println!(
            "  {:<14} {:>9.3} ms",
            phase,
            report.span_total_us(phase) as f64 / 1000.0
        );
    }
    println!(
        "  ({} context switches, {} simulated cycles recorded)",
        report.counter("sim.context_switches"),
        report.counter("sim.steps"),
    );
}
