//! A time-multiplexed processing pipeline: the paper's motivating DPGA
//! scenario, where one fabric is "sequentially configured as different
//! processors in real time".
//!
//! Four pixel-processing stages share one 4-context device:
//!   context 0 — threshold  (clamp-subtract against a fixed level)
//!   context 1 — gray encode (binary -> Gray for cheap transmission)
//!   context 2 — parity tag  (error-detection bit over the byte)
//!   context 3 — popcount    (brightness estimate)
//!
//! Each "frame" of pixels is streamed through all four stages by switching
//! contexts between passes — hardware reuse in time instead of area.
//!
//! ```sh
//! cargo run --example video_pipeline
//! ```

use mcfpga::netlist::library;
use mcfpga::netlist::words::{bits_to_u64, u64_to_bits};
use mcfpga::prelude::*;

fn main() {
    let arch = ArchSpec::paper_default();
    let stages = vec![
        library::threshold(6, 20),
        library::gray_encoder(6),
        library::parity(6),
        library::popcount(6),
    ];
    let names = ["threshold", "gray", "parity", "popcount"];
    let mut device = MultiDevice::compile(&arch, &stages).expect("compile");

    // A tiny "scanline" of 6-bit pixels.
    let pixels: Vec<u64> = vec![5, 18, 23, 40, 63, 12, 30, 21];
    println!("pixels:    {pixels:?}\n");

    // Pass 1: threshold every pixel (context 0).
    device.switch_context(0);
    let thresholded: Vec<u64> = pixels
        .iter()
        .map(|&p| bits_to_u64(&device.step(&u64_to_bits(p, 6))))
        .collect();
    println!("{:>10}: {thresholded:?}", names[0]);

    // Pass 2: gray-encode the thresholded values (context 1).
    device.switch_context(1);
    let gray: Vec<u64> = thresholded
        .iter()
        .map(|&p| bits_to_u64(&device.step(&u64_to_bits(p, 6))))
        .collect();
    println!("{:>10}: {gray:?}", names[1]);

    // Pass 3: parity tag per encoded value (context 2).
    device.switch_context(2);
    let tags: Vec<u64> = gray
        .iter()
        .map(|&p| bits_to_u64(&device.step(&u64_to_bits(p, 6))))
        .collect();
    println!("{:>10}: {tags:?}", names[2]);

    // Pass 4: brightness estimate of the original pixels (context 3).
    device.switch_context(3);
    let brightness: Vec<u64> = pixels
        .iter()
        .map(|&p| bits_to_u64(&device.step(&u64_to_bits(p, 6))))
        .collect();
    println!("{:>10}: {brightness:?}", names[3]);

    // Verify every stage against its reference netlist.
    for (c, stage) in stages.iter().enumerate() {
        device.switch_context(c);
        for &p in &pixels {
            let inputs = u64_to_bits(p, 6);
            let expect = stage.eval_comb(&inputs).unwrap();
            let got = device.step(&inputs);
            assert_eq!(got, expect, "stage {} pixel {p}", names[c]);
        }
    }
    println!("\nall four stages verified against their reference netlists");

    // The punchline: what this cost in configuration memory.
    let ctx = arch.context_id();
    let stats = mcfpga::config::ColumnSetStats::measure(&device.switch_usage().columns(), ctx);
    println!("switch columns: {}", stats.table_string());
    println!(
        "cheap (1-SE) fraction: {:.1}% -> this is the redundancy the RCM converts into area",
        100.0 * stats.cheap_fraction()
    );
}
