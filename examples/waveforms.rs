//! Fabric observability on the video pipeline: arm signal probes on the
//! batched kernel, dump what they captured as an IEEE 1364 VCD waveform,
//! and rank the fabric's most active LUTs with the activity census.
//!
//! The pipeline's four pixel stages (threshold, gray encode, parity tag,
//! popcount) share one 4-context device. Each batched step drives 64 pixels
//! at once — one per kernel lane — and every armed probe records all 64
//! lanes per clock edge, so the exported waveform is exactly what the
//! kernel computed, not a scalar re-simulation.
//!
//! ```sh
//! cargo run --example waveforms
//! ```
//!
//! Open `waveforms_threshold.vcd` in GTKWave or any VCD viewer.

use mcfpga::netlist::library;
use mcfpga::prelude::*;
use mcfpga::sim::ProbeSet;

fn main() {
    let arch = ArchSpec::paper_default();
    let stages = vec![
        library::threshold(6, 20),
        library::gray_encoder(6),
        library::parity(6),
        library::popcount(6),
    ];
    let mut device = MultiDevice::compile(&arch, &stages).expect("compile");
    device.enable_activity_census();

    // Probe every primary output of the threshold stage, plus one internal
    // LUT, by name. Unknown names fail in-band at arm time.
    println!("probe-able signals of context 0 (threshold):");
    let names = device.probe_signals(0).expect("context");
    println!("  {}\n", names.join(" "));
    let n_outs = device.n_outputs(0).expect("context");
    let mut set = ProbeSet::new();
    for name in &names[..n_outs] {
        set = set.tap(name);
    }
    set = set.tap("lut0");
    device.arm_probes(0, &set).expect("names resolve");

    // One scanline of 6-bit pixels per lane: lane 0 carries the example's
    // pixels, the other 63 lanes sweep the whole 6-bit input space.
    let pixels: Vec<u64> = vec![5, 18, 23, 40, 63, 12, 30, 21];
    device.switch_context(0);
    for (step, &p) in pixels.iter().enumerate() {
        let words: Vec<u64> = (0..6)
            .map(|bit| {
                let mut w = (p >> bit) & 1;
                for lane in 1..64u64 {
                    let sweep = (step as u64 * 64 + lane) & 0x3F;
                    w |= ((sweep >> bit) & 1) << lane;
                }
                w
            })
            .collect();
        device.step_batch(&words);
    }

    // Export lane 0 (the example's own pixels) as a VCD waveform.
    let wave = device.probe_waveform(0, Some(0)).expect("context");
    let vcd = wave.to_vcd();
    std::fs::write("waveforms_threshold.vcd", &vcd).expect("write vcd");
    println!(
        "wrote waveforms_threshold.vcd ({} bytes, {} signals x {} samples, lane 0)",
        vcd.len(),
        wave.signals().len(),
        wave.n_samples()
    );

    // The full 64-lane capture is also exportable: each probe becomes one
    // 64-bit vector signal whose bits are the stimulus lanes.
    let all_lanes = device.probe_waveform(0, None).expect("context");
    println!(
        "full capture: {} signals, {} bits wide each\n",
        all_lanes.signals().len(),
        all_lanes.signals().first().map_or(0, |s| s.width)
    );

    // Census: the five most active LUTs under the sweep, ranked by the
    // toggle-rate x fanout dynamic-power proxy.
    let census = device.activity_census(0).expect("context");
    println!(
        "top 5 most active LUTs (context 0, {} lane-cycles):",
        census.lane_cycles
    );
    for row in census.ranked().iter().take(5) {
        println!(
            "  lut{:<3} toggles {:>5}  rate {:.3}  fanout {}  power proxy {:.3}",
            row.lut, row.toggles, row.toggle_rate, row.fanout, row.power_proxy
        );
    }
}
