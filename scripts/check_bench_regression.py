#!/usr/bin/env python3
"""Compare a fresh BENCH_flow.json against the committed BENCH_baseline.json.

The flow is fully seeded, so the *quality* numbers (area ratios, measured
change rate, counter-derived statistics) must reproduce near-exactly; only
floating-point noise across platforms is tolerated. Wall-clock numbers vary
with the runner, so phase timings only fail on order-of-magnitude blowups,
and sub-millisecond phases are skipped entirely (they are all noise).

When the baseline carries a "sim" section, a fresh BENCH_sim.json is also
gated: throughputs may not fall an order of magnitude below baseline, the
batched-over-scalar speedup has a hard floor (the bit-parallel kernel must
actually pay for itself), and the seeded fault campaign's detection counts
must reproduce exactly. When that section also carries the wide-word
matrix keys, the streaming-runner cells are gated too: every
(optimizer, width, threads) cell in the baseline must be present, every
cell must have verified bit-identical against the width-1 unoptimized
reference (0 divergences), the best cell must beat the same run's
step-batch throughput by the SIM_MATRIX_FLOOR factor, and the kernel
optimizer's per-context instruction counts — deterministic functions of
the seeded compile — must reproduce exactly.

When the baseline carries a "serve" section, a fresh BENCH_serve.json is
gated too: the repeat-submission phase must hit cache on 100% of jobs,
concurrent sessions must show zero divergences from their private replays,
4-worker throughput may not collapse below baseline, and — only on runners
with at least 4 cores — 1→4 worker scaling has a hard floor.

When the baseline carries a "serve_obs" section, a fresh BENCH_serve_obs.json
is held to the serving-observability SLOs: the aggressor-isolation ratio
(victim p99 alone over victim p99 next to an open-loop aggressor) may not
fall below the baseline floor, at least `min_shed` admission sheds must have
fired (otherwise the experiment no longer exercises overload), every shed
must be attributed — tenant ledgers and the trace ring agreeing exactly —
and every tenant ledger must conserve
(submitted == completed+failed+expired+rejected+shed+inflight).

When the baseline carries a "delta" section, a fresh BENCH_delta.json is
gated on the delta-compilation contract: zero bit divergences between
delta-compiled and cold-compiled artifacts (the non-negotiable invariant),
every change-rate variant served through the near-match path, and a hard
speedup floor at the paper's 5% change point — if recompiling a 5%-changed
context stops being at least `speedup_floor_5pct`x cheaper than a cold
compile, the delta path stopped paying for itself.

When the baseline carries a "probe" section, a fresh BENCH_probe.json is
gated on the observability contract: zero divergences between armed probe
captures and per-lane scalar replays (probing must never change what the
kernel computes), the disabled-probe throughput may not fall below the
baseline floor fraction of the same run's plain batched throughput from
BENCH_sim.json (disarmed probes must stay effectively free), and the
seeded activity census must reproduce its per-context LUT ranking exactly.

When the baseline carries a "shard" section, a fresh BENCH_shard.json is
gated on the scale-out serving contract: the kill must have actually cost
sessions (otherwise the experiment proves nothing), every session on the
killed shard must be recovered with zero lost, the failure-injected run
must match the unkilled reference word-for-word (zero divergences), the
conservation flag must hold, and migration p99 latency may only blow up by
the usual timing factor over baseline.

Usage: check_bench_regression.py [fresh] [baseline] [fresh_sim] [fresh_serve]
       [fresh_serve_obs] [fresh_delta] [fresh_probe] [fresh_shard]
Exits non-zero listing every regression found.
"""

import json
import sys

# Deterministic quality metrics: relative tolerance for float noise only.
RATIO_REL_TOL = 0.02
# Timings: fail only when a phase gets this many times slower...
TIME_BLOWUP = 20.0
# ...and the baseline phase was big enough to be signal, not noise.
TIME_FLOOR_US = 1_000
# The 64-lane kernel must beat the scalar interpreter by at least this much
# on any runner; anything lower means the batched path stopped paying off.
SIM_SPEEDUP_FLOOR = 8.0
# The best wide-word streaming cell must beat the same run's step-batch
# throughput by at least this factor — the wide-word + optimizer tentpole.
# Same-run ratio, so runner speed cancels out.
SIM_MATRIX_FLOOR = 3.0
# 1->4 worker throughput scaling floor for the serving layer, enforced only
# on runners whose available_parallelism is at least this many cores (a
# 1-core container cannot scale no matter how good the code is).
SERVE_SCALING_FLOOR = 2.0
SERVE_SCALING_MIN_CORES = 4


def main() -> int:
    fresh_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_flow.json"
    base_path = sys.argv[2] if len(sys.argv) > 2 else "BENCH_baseline.json"
    fresh = json.load(open(fresh_path))
    base = json.load(open(base_path))
    errors = []

    def check_ratio(label, got, want):
        if want == 0:
            ok = abs(got) < 1e-9
        else:
            ok = abs(got - want) <= RATIO_REL_TOL * abs(want)
        if not ok:
            errors.append(f"{label}: {got:.6f} vs baseline {want:.6f} "
                          f"(> {RATIO_REL_TOL:.0%} relative)")

    for key in ["cmos_ratio", "fepg_ratio", "headline_cmos_ratio",
                "headline_fepg_ratio", "change_rate"]:
        check_ratio(key, fresh[key], base[key])

    base_points = {p["label"]: p for p in base["area_points"]}
    for p in fresh["area_points"]:
        b = base_points.get(p["label"])
        if b is None:
            errors.append(f"area point {p['label']!r} missing from baseline")
            continue
        for key in ["cmos_ratio", "fepg_ratio", "change_rate"]:
            check_ratio(f"area_points[{p['label']}].{key}", p[key], b[key])
    for label in base_points:
        if label not in {p["label"] for p in fresh["area_points"]}:
            errors.append(f"area point {label!r} disappeared")

    base_phases = {p["phase"]: p["total_us"] for p in base["phase_totals_us"]}
    for p in fresh["phase_totals_us"]:
        want = base_phases.get(p["phase"])
        if want is None:
            errors.append(f"phase {p['phase']!r} missing from baseline")
        elif want >= TIME_FLOOR_US and p["total_us"] > TIME_BLOWUP * want:
            errors.append(f"phase {p['phase']}: {p['total_us']} us vs "
                          f"baseline {want} us (> {TIME_BLOWUP:.0f}x)")
    for phase in base_phases:
        if phase not in {p["phase"] for p in fresh["phase_totals_us"]}:
            errors.append(f"phase {phase!r} disappeared")

    for key in ["compile_serial_us", "compile_parallel_us"]:
        want = base[key]
        if want >= TIME_FLOOR_US and fresh[key] > TIME_BLOWUP * want:
            errors.append(f"{key}: {fresh[key]} us vs baseline {want} us "
                          f"(> {TIME_BLOWUP:.0f}x)")

    if fresh["parallelism"] < 1:
        errors.append(f"parallelism {fresh['parallelism']} < 1")

    sim_checked = False
    sim = None
    if "sim" in base:
        sim_path = sys.argv[3] if len(sys.argv) > 3 else "BENCH_sim.json"
        try:
            sim = json.load(open(sim_path))
        except OSError:
            errors.append(f"baseline has a sim section but {sim_path} is missing")
            sim = None
        if sim is not None:
            sim_checked = True
            sim_base = base["sim"]
            if sim["speedup"] < SIM_SPEEDUP_FLOOR:
                errors.append(
                    f"sim.speedup: batched is only {sim['speedup']:.1f}x scalar "
                    f"(floor {SIM_SPEEDUP_FLOOR:.0f}x)")
            for key in ["scalar_vectors_per_sec", "batched_vectors_per_sec"]:
                want = sim_base[key]
                if sim[key] < want / TIME_BLOWUP:
                    errors.append(
                        f"sim.{key}: {sim[key]:.0f}/s vs baseline {want:.0f}/s "
                        f"(> {TIME_BLOWUP:.0f}x slower)")
            want_ms = sim_base["fault_campaign_ms"]
            if want_ms >= 1.0 and sim["fault_campaign_ms"] > TIME_BLOWUP * want_ms:
                errors.append(
                    f"sim.fault_campaign_ms: {sim['fault_campaign_ms']:.1f} ms vs "
                    f"baseline {want_ms:.1f} ms (> {TIME_BLOWUP:.0f}x)")
            # The campaign is fully seeded and evaluated in integer bit
            # arithmetic: its detection counts must reproduce exactly.
            for key in ["fault_injected", "fault_detected"]:
                if sim[key] != sim_base[key]:
                    errors.append(
                        f"sim.{key}: {sim[key]} vs baseline {sim_base[key]} "
                        f"(seeded campaign must be deterministic)")
            if "matrix_best_vectors_per_sec" in sim_base:
                best = sim.get("matrix_best_vectors_per_sec", 0.0)
                want = sim_base["matrix_best_vectors_per_sec"]
                if best < want / TIME_BLOWUP:
                    errors.append(
                        f"sim.matrix_best_vectors_per_sec: {best:.0f}/s vs "
                        f"baseline {want:.0f}/s (> {TIME_BLOWUP:.0f}x slower)")
                if best < SIM_MATRIX_FLOOR * sim["batched_vectors_per_sec"]:
                    errors.append(
                        f"sim.matrix_best_vectors_per_sec: {best:.0f}/s is "
                        f"under {SIM_MATRIX_FLOOR:.0f}x the same run's "
                        f"step-batch {sim['batched_vectors_per_sec']:.0f}/s "
                        f"(wide-word + optimizer path stopped paying off)")
                if sim.get("reference_divergences", -1) != 0:
                    errors.append(
                        f"sim.reference_divergences: "
                        f"{sim.get('reference_divergences')} (must be 0: the "
                        f"width-1 reference must match the scalar path)")
                cells = {(c["optimize"], c["width"], c["threads"]): c
                         for c in sim.get("matrix", [])}
                for b in sim_base["matrix"]:
                    key = (b["optimize"], b["width"], b["threads"])
                    got = cells.get(key)
                    if got is None:
                        errors.append(
                            f"sim.matrix cell optimize={key[0]} width={key[1]} "
                            f"threads={key[2]} disappeared")
                    elif got["divergences"] != 0:
                        errors.append(
                            f"sim.matrix cell optimize={key[0]} width={key[1]} "
                            f"threads={key[2]}: {got['divergences']} divergences "
                            f"(every cell must be bit-identical to the "
                            f"reference)")
                # The optimizer's per-context effect is a deterministic
                # function of the seeded compile: exact counts, and never an
                # instruction- or word-op-count increase.
                want_opt = {o["context"]: o for o in sim_base["optimizer"]}
                got_opt = {o["context"]: o for o in sim.get("optimizer", [])}
                if set(want_opt) != set(got_opt):
                    errors.append(
                        f"sim.optimizer contexts {sorted(got_opt)} vs baseline "
                        f"{sorted(want_opt)}")
                for c, b in want_opt.items():
                    o = got_opt.get(c)
                    if o is None:
                        continue
                    for key in ["instrs_before", "instrs_after",
                                "word_ops_before", "word_ops_after",
                                "folded_operands", "deduped", "dead",
                                "specialized"]:
                        if o[key] != b[key]:
                            errors.append(
                                f"sim.optimizer[ctx {c}].{key}: {o[key]} vs "
                                f"baseline {b[key]} (seeded optimizer must be "
                                f"deterministic)")
                    if o["instrs_after"] > o["instrs_before"]:
                        errors.append(
                            f"sim.optimizer[ctx {c}]: instruction count grew "
                            f"{o['instrs_before']} -> {o['instrs_after']}")
                    if o["word_ops_after"] > o["word_ops_before"]:
                        errors.append(
                            f"sim.optimizer[ctx {c}]: word-op count grew "
                            f"{o['word_ops_before']} -> {o['word_ops_after']}")

    serve_checked = False
    if "serve" in base:
        serve_path = sys.argv[4] if len(sys.argv) > 4 else "BENCH_serve.json"
        try:
            serve = json.load(open(serve_path))
        except OSError:
            errors.append(f"baseline has a serve section but {serve_path} is missing")
            serve = None
        if serve is not None:
            serve_checked = True
            serve_base = base["serve"]
            # The repeat phase resubmits byte-identical content: anything
            # short of a 100% hit rate means the content address broke.
            if serve["repeat_cache_hit_rate"] != 1.0:
                errors.append(
                    f"serve.repeat_cache_hit_rate: "
                    f"{serve['repeat_cache_hit_rate']:.3f} (must be exactly 1.0)")
            # Sessions are verified word-for-word against private replays.
            if serve["cross_session_divergences"] != 0:
                errors.append(
                    f"serve.cross_session_divergences: "
                    f"{serve['cross_session_divergences']} (must be 0)")
            want = serve_base["throughput_jobs_per_sec_4w"]
            if serve["throughput_jobs_per_sec_4w"] < want / TIME_BLOWUP:
                errors.append(
                    f"serve.throughput_jobs_per_sec_4w: "
                    f"{serve['throughput_jobs_per_sec_4w']:.2f}/s vs baseline "
                    f"{want:.2f}/s (> {TIME_BLOWUP:.0f}x slower)")
            if serve["available_parallelism"] >= SERVE_SCALING_MIN_CORES:
                if serve["scaling_1_to_4"] < SERVE_SCALING_FLOOR:
                    errors.append(
                        f"serve.scaling_1_to_4: {serve['scaling_1_to_4']:.2f}x "
                        f"on a {serve['available_parallelism']}-core runner "
                        f"(floor {SERVE_SCALING_FLOOR:.0f}x)")

    obs_checked = False
    if "serve_obs" in base:
        obs_path = sys.argv[5] if len(sys.argv) > 5 else "BENCH_serve_obs.json"
        try:
            obs = json.load(open(obs_path))
        except OSError:
            errors.append(
                f"baseline has a serve_obs section but {obs_path} is missing")
            obs = None
        if obs is not None:
            obs_checked = True
            obs_base = base["serve_obs"]
            # SLO: an open-loop aggressor may not drag victim tail latency
            # below the isolation floor (1.0 = perfect isolation).
            floor = obs_base["isolation_floor"]
            if obs["aggressor_isolation_ratio"] < floor:
                errors.append(
                    f"serve_obs.aggressor_isolation_ratio: "
                    f"{obs['aggressor_isolation_ratio']:.3f} < floor {floor}")
            # SLO: the overload experiment must actually overload; a run
            # with no sheds proves nothing about admission control.
            if obs["shed_total"] < obs_base["min_shed"]:
                errors.append(
                    f"serve_obs.shed_total: {obs['shed_total']} < "
                    f"min_shed {obs_base['min_shed']}")
            # SLO: zero unattributed sheds — per-tenant ledgers and the
            # trace ring must agree shed-for-shed.
            if obs["unattributed_sheds"] != 0:
                errors.append(
                    f"serve_obs.unattributed_sheds: "
                    f"{obs['unattributed_sheds']} (must be 0)")
            typed = (obs["shed_queue_watermark"] + obs["shed_tenant_inflight"]
                     + obs["shed_policy"])
            if typed != obs["shed_total"]:
                errors.append(
                    f"serve_obs: typed shed counts sum to {typed}, "
                    f"total is {obs['shed_total']}")
            # SLO: exact conservation on every tenant ledger.
            if not obs["all_conserved"]:
                errors.append("serve_obs.all_conserved is false: a tenant "
                              "ledger lost or double-counted an attempt")
            if obs["trace_dropped"] != 0:
                errors.append(
                    f"serve_obs.trace_dropped: {obs['trace_dropped']} "
                    f"(ring must hold the whole experiment)")

    delta_checked = False
    if "delta" in base:
        delta_path = sys.argv[6] if len(sys.argv) > 6 else "BENCH_delta.json"
        try:
            delta = json.load(open(delta_path))
        except OSError:
            errors.append(
                f"baseline has a delta section but {delta_path} is missing")
            delta = None
        if delta is not None:
            delta_checked = True
            delta_base = base["delta"]
            # The non-negotiable invariant: a delta-compiled design is
            # bit-for-bit the cold compile of the same request.
            if delta["divergences"] != delta_base["max_divergences"]:
                errors.append(
                    f"delta.divergences: {delta['divergences']} "
                    f"(must be {delta_base['max_divergences']}: delta compile "
                    f"must be bit-identical to cold)")
            # Every perturbed variant must have been answered through the
            # near-match delta path, not a silent cold compile.
            if delta["serve_near_hits"] != len(delta["points"]):
                errors.append(
                    f"delta.serve_near_hits: {delta['serve_near_hits']} of "
                    f"{len(delta['points'])} variants took the delta path")
            floor = delta_base["speedup_floor_5pct"]
            if delta["speedup_at_5pct"] < floor:
                errors.append(
                    f"delta.speedup_at_5pct: {delta['speedup_at_5pct']:.1f}x "
                    f"< floor {floor}x (delta recompile stopped paying off)")
            # A reused context count of zero at low change rates means the
            # per-context fingerprints stopped matching — the cache would
            # silently degrade to cold compiles.
            for p in delta["points"]:
                if p["contexts_reused"] < p["contexts_total"] - 1:
                    errors.append(
                        f"delta.points[{p['label']}]: only "
                        f"{p['contexts_reused']}/{p['contexts_total']} contexts "
                        f"reused for a single-context perturbation")

    probe_checked = False
    if "probe" in base:
        probe_path = sys.argv[7] if len(sys.argv) > 7 else "BENCH_probe.json"
        try:
            probe = json.load(open(probe_path))
        except OSError:
            errors.append(
                f"baseline has a probe section but {probe_path} is missing")
            probe = None
        if probe is not None:
            probe_checked = True
            probe_base = base["probe"]
            # The non-negotiable invariant: armed probes record exactly what
            # the 64-lane kernel computed, checked word-for-word against
            # scalar replays of every lane.
            if probe["probe_divergences"] != probe_base["max_divergences"]:
                errors.append(
                    f"probe.probe_divergences: {probe['probe_divergences']} "
                    f"(must be {probe_base['max_divergences']}: probe captures "
                    f"must match the scalar replay bit-for-bit)")
            # Disarmed probes must stay effectively free: the disabled-path
            # throughput is held against the plain batched kernel throughput
            # measured in the same CI run (BENCH_sim.json, same runner).
            if sim is not None:
                floor = probe_base["disabled_overhead_floor"]
                plain = sim["batched_vectors_per_sec"]
                got = probe["probe_disabled_vectors_per_sec"]
                if got < floor * plain:
                    errors.append(
                        f"probe.probe_disabled_vectors_per_sec: {got:.0f}/s "
                        f"< {floor:.0%} of the same run's plain batched "
                        f"{plain:.0f}/s (disabled probes are no longer free)")
            # The census run is fully seeded and counts toggles in integer
            # bit arithmetic: the activity ranking must reproduce exactly.
            want_ranks = {r["context"]: r["top_luts"]
                          for r in probe_base["activity_top"]}
            got_ranks = {r["context"]: r["top_luts"]
                         for r in probe["activity_top"]}
            if got_ranks != want_ranks:
                errors.append(
                    f"probe.activity_top: {got_ranks} vs baseline "
                    f"{want_ranks} (seeded census must be deterministic)")

    shard_checked = False
    if "shard" in base:
        shard_path = sys.argv[8] if len(sys.argv) > 8 else "BENCH_shard.json"
        try:
            shard = json.load(open(shard_path))
        except OSError:
            errors.append(
                f"baseline has a shard section but {shard_path} is missing")
            shard = None
        if shard is not None:
            shard_checked = True
            shard_base = base["shard"]
            # The kill must have hit live sessions; a kill that lost nothing
            # exercises neither the store nor the restore path.
            if shard["sessions_on_killed"] < 1:
                errors.append(
                    f"shard.sessions_on_killed: {shard['sessions_on_killed']} "
                    f"(the killed shard held no sessions — no recovery was "
                    f"exercised)")
            # The non-negotiable invariants: every session on the killed
            # shard comes back, and the failure-injected run's output is
            # word-for-word the unkilled reference's.
            if shard["sessions_lost"] != 0:
                errors.append(
                    f"shard.sessions_lost: {shard['sessions_lost']} "
                    f"(must be 0: every checkpointed session must survive "
                    f"a shard kill)")
            if shard["sessions_recovered"] != shard["sessions_on_killed"]:
                errors.append(
                    f"shard.sessions_recovered: {shard['sessions_recovered']} "
                    f"of {shard['sessions_on_killed']} killed-shard sessions")
            if shard["divergences"] != 0:
                errors.append(
                    f"shard.divergences: {shard['divergences']} (must be 0: "
                    f"migration and recovery must be bit-invisible vs the "
                    f"unkilled reference)")
            if not shard["conserved"]:
                errors.append("shard.conserved is false: sessions were lost "
                              "or duplicated across the kill")
            want = shard_base["migrate_p99_us"]
            if want >= TIME_FLOOR_US and shard["migrate_p99_us"] > TIME_BLOWUP * want:
                errors.append(
                    f"shard.migrate_p99_us: {shard['migrate_p99_us']} us vs "
                    f"baseline {want} us (> {TIME_BLOWUP:.0f}x)")

    if errors:
        print(f"BENCH regression vs {base_path}:")
        for e in errors:
            print(f"  - {e}")
        return 1
    print(f"BENCH_flow.json within tolerance of {base_path} "
          f"({len(base_points)} area points, {len(base_phases)} phases"
          + (", sim gate OK" if sim_checked else "")
          + (", serve gate OK" if serve_checked else "")
          + (", serve_obs SLOs OK" if obs_checked else "")
          + (", delta gate OK" if delta_checked else "")
          + (", probe gate OK" if probe_checked else "")
          + (", shard gate OK" if shard_checked else "") + ").")
    return 0


if __name__ == "__main__":
    sys.exit(main())
