//! Integration: the Section 5 numbers, their consistency, and the measured
//! vs analytic agreement.

use mcfpga::area::{
    area_comparison, static_power, AreaParams, ColumnDistribution, FabricWeights, PowerParams,
    Technology,
};
use mcfpga::netlist::{workload, RandomNetlistParams};
use mcfpga::prelude::*;
use mcfpga::sim::Device;

#[test]
fn headline_ratios_match_the_paper_region() {
    let eval = evaluate_paper_point();
    // Paper: 45% CMOS, 37% FePG. We accept the right neighbourhood and the
    // right ordering; exact transistor counts were never published.
    assert!(
        (eval.cmos.ratio - 0.45).abs() < 0.08,
        "CMOS {:.3}",
        eval.cmos.ratio
    );
    assert!(
        (eval.fepg.ratio - 0.37).abs() < 0.08,
        "FePG {:.3}",
        eval.fepg.ratio
    );
    assert!(eval.fepg.ratio < eval.cmos.ratio);
}

#[test]
fn analytic_distribution_agrees_with_sampling() {
    use mcfpga::config::random_column;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let ctx = ContextId::new(4).unwrap();
    let dist = ColumnDistribution::new(ctx, 0.05);
    let analytic = dist.expected_ses();
    let mut rng = StdRng::seed_from_u64(4);
    let sampled: f64 = (0..40_000)
        .map(|_| {
            mcfpga::rcm::synthesize(random_column(ctx, 0.05, &mut rng), ctx)
                .cost()
                .n_ses as f64
        })
        .sum::<f64>()
        / 40_000.0;
    assert!(
        (analytic - sampled).abs() < 0.03,
        "analytic {analytic:.3} vs sampled {sampled:.3}"
    );
}

#[test]
fn measured_device_ratio_is_consistent() {
    let arch = ArchSpec::paper_default();
    let params = AreaParams::paper_default();
    let weights = FabricWeights::default();
    let w = workload(RandomNetlistParams::default(), 4, 0.05, 321);
    let dev = Device::compile(&arch, &w).unwrap();
    for tech in [Technology::Cmos, Technology::Fepg] {
        let measured = measured_area_comparison(&dev, tech, &params, &weights);
        assert!(measured.ratio > 0.0 && measured.ratio < 1.0);
        assert!(
            (measured.proposed_switches + measured.proposed_lb - measured.proposed_cell).abs()
                < 1e-9
        );
    }
}

#[test]
fn fepg_strictly_dominates_cmos_everywhere() {
    let arch = ArchSpec::paper_default();
    let params = AreaParams::paper_default();
    let weights = FabricWeights::default();
    for r in [0.0, 0.05, 0.2, 0.5, 1.0] {
        let cmos = area_comparison(&arch, r, Technology::Cmos, &params, &weights);
        let fepg = area_comparison(&arch, r, Technology::Fepg, &params, &weights);
        assert!(fepg.ratio < cmos.ratio, "r={r}");
    }
}

#[test]
fn power_hierarchy_holds() {
    // conventional > proposed CMOS > proposed FePG, at the paper's point.
    let arch = ArchSpec::paper_default();
    let pp = PowerParams::default();
    let weights = FabricWeights::default();
    let cmos = static_power(&arch, 0.05, Technology::Cmos, &pp, &weights);
    let fepg = static_power(&arch, 0.05, Technology::Fepg, &pp, &weights);
    assert!(cmos.proposed < cmos.conventional);
    assert!(fepg.proposed < cmos.proposed);
    assert_eq!(cmos.conventional, fepg.conventional);
}

#[test]
fn context_scaling_shape() {
    // The advantage deepens from 2 to 4 contexts (the paper's regime).
    let params = AreaParams::paper_default();
    let weights = FabricWeights::default();
    let r2 = area_comparison(
        &ArchSpec::paper_default().with_contexts(2),
        0.05,
        Technology::Cmos,
        &params,
        &weights,
    );
    let r4 = area_comparison(
        &ArchSpec::paper_default(),
        0.05,
        Technology::Cmos,
        &params,
        &weights,
    );
    assert!(r4.ratio < r2.ratio);
}
