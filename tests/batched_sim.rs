//! Cross-crate properties of the bit-parallel compiled simulation kernel:
//! batched and scalar stepping must agree bit-exactly on all 64 lanes over
//! random workloads, random context switches, random register state, and
//! injected configuration faults — and kernel caches must invalidate when
//! the configuration mutates.

use mcfpga::netlist::{library, random_netlist, workload, RandomNetlistParams};
use mcfpga::prelude::*;
use mcfpga::sim::{KernelOptions, LutFault, LANES};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Aligned-workload device: a batched run over random context switches
    /// (word boundaries, all lanes together) equals 64 scalar replays, lane
    /// by lane, outputs and toggle accounting both — with and without an
    /// injected LUT fault.
    #[test]
    fn device_batched_matches_scalar_on_all_lanes(
        seed in 0u64..10_000,
        n_ctx in 1usize..=4,
        inject in any::<bool>(),
    ) {
        let arch = ArchSpec::paper_default();
        let w = workload(
            RandomNetlistParams {
                n_inputs: 6,
                n_gates: 30,
                n_outputs: 4,
                dff_fraction: 0.2,
            },
            n_ctx,
            0.2,
            seed,
        );
        let mut dev = Device::compile(&arch, &w).unwrap();
        if inject {
            dev.inject_lut_fault(LutFault { lb: 0, output: 0, plane: 0, assignment: 1 });
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE);
        let words = 6usize;
        let schedule: Vec<(usize, Vec<u64>)> = (0..words)
            .map(|_| {
                (
                    rng.gen_range(0..n_ctx),
                    (0..6).map(|_| rng.next_u64()).collect(),
                )
            })
            .collect();
        // Batched run.
        dev.reset();
        let mut batch_out = Vec::with_capacity(words);
        for (c, inputs) in &schedule {
            dev.switch_context(*c);
            batch_out.push(dev.step_batch(inputs));
        }
        let batch_toggles = dev.toggles();
        prop_assert_eq!(dev.cycles(), (words * LANES) as u64);
        // Scalar replay, lane by lane, on the same (possibly faulty) device.
        let mut toggle_sum = 0u64;
        for lane in 0..LANES {
            dev.reset();
            for (word, (c, inputs)) in schedule.iter().enumerate() {
                dev.switch_context(*c);
                let bits: Vec<bool> = inputs.iter().map(|iw| (iw >> lane) & 1 == 1).collect();
                let out = dev.step(&bits);
                for (o, &b) in out.iter().enumerate() {
                    prop_assert_eq!(
                        (batch_out[word][o] >> lane) & 1 == 1,
                        b,
                        "word {} lane {} output {}",
                        word,
                        lane,
                        o
                    );
                }
            }
            toggle_sum += dev.toggles();
        }
        // The batched popcount accounting equals the sum of its lanes'
        // scalar toggle counts.
        prop_assert_eq!(batch_toggles, toggle_sum);
    }

    /// Heterogeneous device: independent circuits per context, random
    /// initial register state, random word-boundary context switches —
    /// batched equals 64 scalar replays on every lane.
    #[test]
    fn multi_batched_matches_scalar_on_all_lanes(
        seed in 0u64..10_000,
        n_ctx in 1usize..=3,
    ) {
        let arch = ArchSpec::paper_default();
        let circuits: Vec<Netlist> = (0..n_ctx)
            .map(|c| {
                random_netlist(
                    RandomNetlistParams {
                        n_inputs: 5,
                        n_gates: 25,
                        n_outputs: 3,
                        dff_fraction: 0.15,
                    },
                    seed.wrapping_add(c as u64 * 7919),
                )
            })
            .collect();
        let mut dev = MultiDevice::compile(&arch, &circuits).unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
        let init: Vec<Vec<bool>> = (0..n_ctx)
            .map(|c| (0..dev.registers(c).len()).map(|_| rng.gen_bool(0.5)).collect())
            .collect();
        let words = 5usize;
        let schedule: Vec<(usize, Vec<u64>)> = (0..words)
            .map(|_| {
                (
                    rng.gen_range(0..n_ctx),
                    (0..5).map(|_| rng.next_u64()).collect(),
                )
            })
            .collect();
        // Batched run from the random register state.
        for (c, bits) in init.iter().enumerate() {
            dev.set_registers(c, bits);
        }
        let mut batch_out = Vec::with_capacity(words);
        for (c, inputs) in &schedule {
            dev.switch_context(*c);
            batch_out.push(dev.step_batch(inputs));
        }
        // Scalar replay, lane by lane, restoring the same register state.
        for lane in 0..LANES {
            for (c, bits) in init.iter().enumerate() {
                dev.set_registers(c, bits);
            }
            for (word, (c, inputs)) in schedule.iter().enumerate() {
                dev.switch_context(*c);
                let bits: Vec<bool> = inputs.iter().map(|iw| (iw >> lane) & 1 == 1).collect();
                let out = dev.step(&bits);
                for (o, &b) in out.iter().enumerate() {
                    prop_assert_eq!(
                        (batch_out[word][o] >> lane) & 1 == 1,
                        b,
                        "word {} lane {} output {}",
                        word,
                        lane,
                        o
                    );
                }
            }
        }
    }
    /// Kernel-optimizer soundness end to end: the same device stepped with
    /// optimized batched kernels agrees with the scalar path (which never
    /// touches kernels) on every lane — across random workloads, random
    /// word-boundary context switches, random register state, and injected
    /// configuration faults.
    #[test]
    fn optimized_batched_matches_scalar_on_all_lanes(
        seed in 0u64..10_000,
        n_ctx in 1usize..=4,
        inject in any::<bool>(),
    ) {
        let arch = ArchSpec::paper_default();
        let w = workload(
            RandomNetlistParams {
                n_inputs: 6,
                n_gates: 30,
                n_outputs: 4,
                dff_fraction: 0.2,
            },
            n_ctx,
            0.2,
            seed,
        );
        let mut dev = Device::compile(&arch, &w).unwrap();
        dev.set_kernel_options(KernelOptions::new().with_optimize(true));
        if inject {
            dev.inject_lut_fault(LutFault { lb: 0, output: 0, plane: 0, assignment: 1 });
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0DD1);
        let words = 6usize;
        let schedule: Vec<(usize, Vec<u64>)> = (0..words)
            .map(|_| {
                (
                    rng.gen_range(0..n_ctx),
                    (0..6).map(|_| rng.next_u64()).collect(),
                )
            })
            .collect();
        dev.reset();
        let mut batch_out = Vec::with_capacity(words);
        for (c, inputs) in &schedule {
            dev.switch_context(*c);
            batch_out.push(dev.step_batch(inputs));
        }
        for lane in 0..LANES {
            dev.reset();
            for (word, (c, inputs)) in schedule.iter().enumerate() {
                dev.switch_context(*c);
                let bits: Vec<bool> = inputs.iter().map(|iw| (iw >> lane) & 1 == 1).collect();
                let out = dev.step(&bits);
                for (o, &b) in out.iter().enumerate() {
                    prop_assert_eq!(
                        (batch_out[word][o] >> lane) & 1 == 1,
                        b,
                        "word {} lane {} output {}",
                        word,
                        lane,
                        o
                    );
                }
            }
        }
    }

    /// Throughput runner: every chunk word is an *independent* 64-lane
    /// stimulus stream, so a width-`W` run equals `W` separate width-1
    /// unoptimized serial runs, word for word, at every supported width,
    /// thread count, and optimizer setting — and the width-1 reference
    /// itself equals 64 scalar replays, lane by lane, from the same random
    /// register state.
    #[test]
    fn throughput_runner_matches_reference_at_every_width(
        seed in 0u64..10_000,
        optimize in any::<bool>(),
    ) {
        let arch = ArchSpec::paper_default();
        let circuits = vec![random_netlist(
            RandomNetlistParams {
                n_inputs: 5,
                n_gates: 25,
                n_outputs: 3,
                dff_fraction: 0.2,
            },
            seed,
        )];
        let mut dev = MultiDevice::compile(&arch, &circuits).unwrap();
        let n_inputs = 5usize;
        let n_outputs = dev.kernel(0).unwrap().n_outputs();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
        let init: Vec<bool> = (0..dev.registers(0).len()).map(|_| rng.gen_bool(0.5)).collect();
        dev.set_registers(0, &init);
        // One narrow stream per word of the widest chunk; every stream (and
        // every chunk word of a wide run) starts from the same broadcast
        // register state, because the runner never writes state back.
        let n_chunks = 8usize;
        let max_width = *mcfpga::sim::SUPPORTED_WIDTHS.last().unwrap();
        let streams: Vec<Vec<u64>> = (0..max_width)
            .map(|_| (0..n_chunks * n_inputs).map(|_| rng.next_u64()).collect())
            .collect();
        let refs: Vec<Vec<u64>> = streams
            .iter()
            .map(|s| dev.run_throughput(0, s, 1, 1))
            .collect();
        prop_assert_eq!(refs[0].len(), n_chunks * n_outputs);
        dev.set_kernel_options(KernelOptions::new().with_optimize(optimize));
        for &width in mcfpga::sim::SUPPORTED_WIDTHS {
            // Interleave the first `width` streams: stream `w` becomes word
            // `w` of every chunk.
            let mut wide = vec![0u64; n_chunks * n_inputs * width];
            for t in 0..n_chunks {
                for i in 0..n_inputs {
                    for w in 0..width {
                        wide[(t * n_inputs + i) * width + w] = streams[w][t * n_inputs + i];
                    }
                }
            }
            for threads in [1usize, 3] {
                let out = dev.run_throughput(0, &wide, width, threads);
                prop_assert_eq!(out.len(), n_chunks * n_outputs * width);
                for t in 0..n_chunks {
                    for o in 0..n_outputs {
                        for w in 0..width {
                            prop_assert_eq!(
                                out[(t * n_outputs + o) * width + w],
                                refs[w][t * n_outputs + o],
                                "width {} threads {} chunk {} output {} word {}",
                                width, threads, t, o, w
                            );
                        }
                    }
                }
            }
        }
        // Scalar replay of stream 0's reference: the runner left the
        // registers untouched, so every replay starts from the same state.
        prop_assert_eq!(dev.registers(0), init.as_slice());
        for lane in 0..LANES {
            dev.set_registers(0, &init);
            for t in 0..n_chunks {
                let bits: Vec<bool> = (0..n_inputs)
                    .map(|i| (streams[0][t * n_inputs + i] >> lane) & 1 == 1)
                    .collect();
                let out = dev.step(&bits);
                for (o, &b) in out.iter().enumerate() {
                    prop_assert_eq!(
                        (refs[0][t * n_outputs + o] >> lane) & 1 == 1,
                        b,
                        "chunk {} lane {} output {}",
                        t,
                        lane,
                        o
                    );
                }
            }
        }
    }
}

/// Regression: a fault injected after a batched step must show up in the
/// next batched step — a stale cached kernel would silently keep replaying
/// the pre-fault logic.
#[test]
fn kernel_cache_invalidates_after_fault_injection() {
    let arch = ArchSpec::paper_default();
    let circuits = vec![library::parity(8); 4];
    let mut dev = Device::compile(&arch, &circuits).unwrap();
    let mut rng = StdRng::seed_from_u64(42);
    let words: Vec<Vec<u64>> = (0..20)
        .map(|_| (0..8).map(|_| rng.next_u64()).collect())
        .collect();
    let healthy: Vec<Vec<u64>> = words.iter().map(|w| dev.step_batch(w)).collect();
    let fault = LutFault {
        lb: 0,
        output: 0,
        plane: 0,
        assignment: 3,
    };
    dev.inject_lut_fault(fault);
    let faulty: Vec<Vec<u64>> = words.iter().map(|w| dev.step_batch(w)).collect();
    assert_ne!(healthy, faulty, "stale kernel reused pre-fault logic");
    // The post-fault batch agrees with the post-fault scalar path on the
    // first diverging word (parity is combinational, so words replay
    // independently).
    let w = healthy
        .iter()
        .zip(&faulty)
        .position(|(h, f)| h != f)
        .unwrap();
    for lane in 0..LANES {
        let bits: Vec<bool> = words[w].iter().map(|iw| (iw >> lane) & 1 == 1).collect();
        let out = dev.step(&bits);
        for (o, &b) in out.iter().enumerate() {
            assert_eq!((faulty[w][o] >> lane) & 1 == 1, b, "lane {lane} output {o}");
        }
    }
    // Clearing the fault invalidates again and restores the healthy words.
    dev.clear_lut_fault(fault);
    let cleared: Vec<Vec<u64>> = words.iter().map(|w| dev.step_batch(w)).collect();
    assert_eq!(healthy, cleared);
}

/// Regression: the config-epoch invalidation must cover *optimized* cached
/// kernels too — a fault injected between optimized batched steps rebuilds
/// (and re-optimizes) the kernel instead of replaying pre-fault logic.
#[test]
fn optimized_kernel_cache_invalidates_after_fault_injection() {
    let arch = ArchSpec::paper_default();
    let circuits = vec![library::parity(8); 4];
    let mut dev = Device::compile(&arch, &circuits).unwrap();
    dev.set_kernel_options(KernelOptions::new().with_optimize(true));
    let mut rng = StdRng::seed_from_u64(42);
    let words: Vec<Vec<u64>> = (0..20)
        .map(|_| (0..8).map(|_| rng.next_u64()).collect())
        .collect();
    let healthy: Vec<Vec<u64>> = words.iter().map(|w| dev.step_batch(w)).collect();
    let fault = LutFault {
        lb: 0,
        output: 0,
        plane: 0,
        assignment: 3,
    };
    dev.inject_lut_fault(fault);
    let faulty: Vec<Vec<u64>> = words.iter().map(|w| dev.step_batch(w)).collect();
    assert_ne!(
        healthy, faulty,
        "stale optimized kernel reused pre-fault logic"
    );
    // The faulty optimized batch agrees with the unoptimized faulty batch:
    // the optimizer folds the *post-fault* tables.
    let mut plain = Device::compile(&arch, &circuits).unwrap();
    plain.inject_lut_fault(fault);
    let plain_faulty: Vec<Vec<u64>> = words.iter().map(|w| plain.step_batch(w)).collect();
    assert_eq!(faulty, plain_faulty);
    dev.clear_lut_fault(fault);
    let cleared: Vec<Vec<u64>> = words.iter().map(|w| dev.step_batch(w)).collect();
    assert_eq!(healthy, cleared);
}
