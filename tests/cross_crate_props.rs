//! Property-based tests spanning crates: decoder-synthesis correctness for
//! arbitrary columns and context counts, map->simulate equivalence for
//! random netlists, packing feasibility, and bitstream roundtrips.

use mcfpga::config::{Bitstream, ConfigColumn, ResourceClass, ResourceKey};
use mcfpga::map::map_netlist;
use mcfpga::netlist::{random_netlist, RandomNetlistParams};
use mcfpga::prelude::*;
use proptest::prelude::*;

proptest! {
    /// Any column over any context count decodes to itself through the
    /// synthesised SE netlist — the RCM's fundamental contract.
    #[test]
    fn decoder_synthesis_is_functionally_correct(
        mask in any::<u32>(),
        n in 2usize..=16,
    ) {
        let ctx = ContextId::new(n).unwrap();
        let col = ConfigColumn::from_mask(mask, n);
        let prog = synthesize(col, ctx);
        for c in 0..n {
            prop_assert_eq!(prog.eval(ctx, c), col.value_in(c), "context {}", c);
            prop_assert_eq!(prog.tree.eval(ctx, c), col.value_in(c));
        }
    }

    /// Decoder cost never exceeds the worst-case mux tree and the tree
    /// cost accounting matches the lowered netlist.
    #[test]
    fn decoder_costs_are_bounded_and_consistent(
        mask in any::<u32>(),
        n in 2usize..=8,
    ) {
        let ctx = ContextId::new(n).unwrap();
        let col = ConfigColumn::from_mask(mask, n);
        let prog = synthesize(col, ctx);
        let cost = prog.cost();
        prop_assert_eq!(cost.n_ses, prog.tree.se_cost());
        // Worst case for k ID bits: T(k) = 2 + 2 T(k-1), T(1) = 1.
        let k = ctx.n_bits();
        let worst = 3 * (1usize << k) / 2 - 2;
        prop_assert!(cost.n_ses <= worst.max(1), "{} > {}", cost.n_ses, worst);
        // Constant columns are always a single SE.
        if col.is_constant() {
            prop_assert_eq!(cost.n_ses, 1);
        }
    }

    /// Mapping preserves combinational behaviour for random netlists at
    /// every supported LUT size.
    #[test]
    fn mapping_preserves_behaviour(seed in 0u64..500, k in 3usize..=6) {
        let params = RandomNetlistParams {
            n_inputs: 5,
            n_gates: 30,
            n_outputs: 4,
            dff_fraction: 0.0,
        };
        let netlist = random_netlist(params, seed);
        let mapped = map_netlist(&netlist, k).unwrap();
        prop_assert!(mapped.max_fanin() <= k);
        // Exhaustive over the 32 input assignments.
        for a in 0..32usize {
            let inputs: Vec<bool> = (0..5).map(|i| (a >> i) & 1 == 1).collect();
            let expect = netlist.eval_comb(&inputs).unwrap();
            let mut st = mapped.initial_state();
            let got = mapped.step(&inputs, &mut st);
            prop_assert_eq!(&got, &expect, "assignment {}", a);
        }
    }

    /// Bitstream set/get and serde roundtrips hold for arbitrary contents.
    #[test]
    fn bitstream_roundtrips(
        entries in proptest::collection::vec((0u16..32, 0u16..32, 0u32..64, any::<u32>()), 0..40),
    ) {
        let mut bs = Bitstream::new(4);
        for (x, y, idx, mask) in &entries {
            let key = ResourceKey {
                class: ResourceClass::RoutingSwitch,
                cell: mcfpga::arch::Coord::new(*x, *y),
                index: *idx,
            };
            bs.set(key, ConfigColumn::from_mask(*mask, 4));
        }
        let json = serde_json::to_string(&bs).unwrap();
        let back: Bitstream = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&bs, &back);
        for (x, y, idx, mask) in &entries {
            let key = ResourceKey {
                class: ResourceClass::RoutingSwitch,
                cell: mcfpga::arch::Coord::new(*x, *y),
                index: *idx,
            };
            // The last write to a key wins; just check presence & clipping.
            let got = back.get(&key).unwrap();
            prop_assert_eq!(got.mask() & !0b1111, 0, "mask clipped to 4 contexts");
            let _ = mask;
        }
    }

    /// Column statistics invariants: class counts partition the set, change
    /// rate bounded, duplicates consistent with distinct count.
    #[test]
    fn column_stats_invariants(
        masks in proptest::collection::vec(any::<u32>(), 1..200),
        n in 2usize..=8,
    ) {
        use mcfpga::config::ColumnSetStats;
        let ctx = ContextId::new(n).unwrap();
        let cols: Vec<ConfigColumn> =
            masks.iter().map(|&m| ConfigColumn::from_mask(m, n)).collect();
        let stats = ColumnSetStats::measure(&cols, ctx);
        prop_assert_eq!(
            stats.n_constant + stats.n_single_bit + stats.n_general,
            stats.n_columns
        );
        prop_assert_eq!(stats.n_duplicate + stats.n_distinct, stats.n_columns);
        prop_assert!(stats.change_rate >= 0.0 && stats.change_rate <= 1.0);
        prop_assert!(stats.cheap_fraction() >= stats.constant_fraction());
    }

    /// LUT geometry algebra: every mode of every valid geometry preserves
    /// the pool and the plane-select bit count matches.
    #[test]
    fn lut_mode_algebra(min_k in 1usize..6, extra in 0usize..4, outs in 1usize..3) {
        let g = LutGeometry {
            outputs: outs,
            min_inputs: min_k,
            max_inputs: min_k + extra,
        };
        g.validate().unwrap();
        for m in g.modes() {
            prop_assert_eq!(m.bits(), g.pool_bits());
            prop_assert_eq!(
                m.inputs + m.plane_select_bits(),
                g.max_inputs,
                "inputs + select bits span the pool address space"
            );
        }
    }
}

proptest! {
    /// Text-format roundtrip for arbitrary random netlists.
    #[test]
    fn netlist_text_roundtrip(seed in 0u64..300, dffs in 0u8..2) {
        use mcfpga::netlist::{from_text, to_text};
        let params = RandomNetlistParams {
            n_inputs: 5,
            n_gates: 25,
            n_outputs: 4,
            dff_fraction: f64::from(dffs) * 0.15,
        };
        let netlist = random_netlist(params, seed);
        let text = to_text(&netlist);
        let back = from_text(&text).unwrap();
        prop_assert_eq!(&back, &netlist);
    }

    /// Reconfiguration delta records always reconstruct the target image.
    #[test]
    fn reconfig_delta_roundtrip(
        old_bits in proptest::collection::vec(any::<bool>(), 1..512),
        flips in proptest::collection::vec(any::<usize>(), 0..64),
    ) {
        use mcfpga::config::{apply_records, delta_records, plan_reload, ReconfigModel};
        let model = ReconfigModel::default();
        let mut new_bits = old_bits.clone();
        for f in flips {
            let i = f % new_bits.len();
            new_bits[i] = !new_bits[i];
        }
        let records = delta_records(&old_bits, &new_bits, &model);
        let mut image = old_bits.clone();
        apply_records(&mut image, &records, &model);
        prop_assert_eq!(&image, &new_bits);
        let plan = plan_reload(&old_bits, &new_bits, &model);
        prop_assert_eq!(records.len(), plan.dirty_words);
        prop_assert!(plan.changed_bits <= plan.dirty_words * model.delta_word_bits);
    }

    /// The RCM grid layout is always overlap-free and complete when it
    /// succeeds, and uses exactly the decoders' SE budget.
    #[test]
    fn rcm_grid_layout_is_sound(
        masks in proptest::collection::vec(0u32..16, 1..24),
        rows in 4usize..12,
        cols in 4usize..12,
    ) {
        use mcfpga::rcm::{synthesize as synth, RcmGrid};
        let ctx = ContextId::new(4).unwrap();
        let programs: Vec<_> = masks
            .iter()
            .map(|&m| synth(ConfigColumn::from_mask(m, 4), ctx))
            .collect();
        let want: usize = programs.iter().map(|p| p.netlist.n_ses()).sum();
        match RcmGrid::new(rows, cols).layout(&programs) {
            Ok(layout) => {
                layout.validate().unwrap();
                prop_assert_eq!(layout.placements.len(), programs.len());
                prop_assert_eq!(layout.ses_used(), want);
                prop_assert!(layout.utilisation() <= 1.0);
            }
            Err(_) => {
                // Failure is only legitimate when the budget cannot fit
                // even allowing first-fit fragmentation (each column can
                // strand up to `tallest - 1` rows) — or a decoder is
                // taller than a column.
                let tallest = programs.iter().map(|p| p.netlist.n_ses()).max().unwrap();
                prop_assert!(
                    want + cols * tallest.saturating_sub(1) > rows * cols || tallest > rows,
                    "layout failed with slack: want {} in {}x{} (tallest {})",
                    want, rows, cols, tallest
                );
            }
        }
    }

    /// LUT deduplication preserves behaviour on random netlists.
    #[test]
    fn dedupe_preserves_behaviour(seed in 0u64..200) {
        use mcfpga::map::dedupe_luts;
        let params = RandomNetlistParams {
            n_inputs: 5,
            n_gates: 30,
            n_outputs: 5,
            dff_fraction: 0.0,
        };
        let netlist = random_netlist(params, seed);
        let mapped = map_netlist(&netlist, 4).unwrap();
        let (deduped, stats) = dedupe_luts(&mapped);
        prop_assert!(stats.after <= stats.before);
        for a in 0..32usize {
            let inputs: Vec<bool> = (0..5).map(|i| (a >> i) & 1 == 1).collect();
            let mut st1 = mapped.initial_state();
            let mut st2 = deduped.initial_state();
            prop_assert_eq!(
                mapped.step(&inputs, &mut st1),
                deduped.step(&inputs, &mut st2)
            );
        }
    }

    /// Decoder evaluation agrees between the logical tree and the lowered
    /// netlist for every context, for any column (richer context range).
    #[test]
    fn tree_and_netlist_always_agree(mask in any::<u32>(), n in 2usize..=12) {
        let ctx = ContextId::new(n).unwrap();
        let col = ConfigColumn::from_mask(mask, n);
        let prog = synthesize(col, ctx);
        for c in 0..n {
            prop_assert_eq!(prog.tree.eval(ctx, c), prog.eval(ctx, c));
        }
    }
}
