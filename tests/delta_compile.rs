//! Integration tests of delta compilation: the near-match design cache,
//! per-context artifact reuse, and the non-negotiable property that a
//! delta-compiled design is bit-for-bit identical to a cold compile of the
//! same request — kernels, initial register state, and switch-bitstream
//! fingerprint.

use std::time::Duration;

use mcfpga_arch::ArchSpec;
use mcfpga_netlist::{library, perturb_netlist, random_netlist, Netlist, RandomNetlistParams};
use mcfpga_obs::Recorder;
use mcfpga_serve::{
    CompileJob, CompiledDesign, DesignFingerprint, ServeConfig, ServeError, Server,
};
use mcfpga_sim::CompileOptions;
use proptest::prelude::*;

fn arch() -> ArchSpec {
    ArchSpec::paper_default()
}

/// Serial compile inside jobs: the serve worker pool is the parallelism.
fn serial() -> CompileOptions {
    CompileOptions::default().with_parallel(false)
}

/// Perturb `base` until the result actually differs: `perturb_netlist` is
/// probabilistic per gate, so a small fraction on a small netlist can be a
/// no-op — which would silently turn a near-match test into an exact-hit
/// test.
fn perturbed_distinct(base: &Netlist, fraction: f64, seed: u64) -> Netlist {
    for s in seed.. {
        let p = perturb_netlist(base, fraction, s);
        if p != *base {
            return p;
        }
    }
    unreachable!("some seed perturbs the netlist");
}

/// Assert two designs are the same artifact bit for bit: every context's
/// compiled kernel and initial register image, plus the switch-bitstream
/// fingerprint covering the full multi-context configuration.
fn assert_bit_identical(delta: &CompiledDesign, cold: &CompiledDesign) {
    assert_eq!(delta.n_contexts(), cold.n_contexts());
    for c in 0..cold.n_contexts() {
        assert_eq!(
            delta.kernel(c),
            cold.kernel(c),
            "context {c} kernel diverged between delta and cold compile"
        );
        assert_eq!(
            delta.initial_registers(c),
            cold.initial_registers(c),
            "context {c} initial register state diverged"
        );
    }
    assert_eq!(
        delta.fingerprint(),
        cold.fingerprint(),
        "switch-bitstream fingerprint diverged between delta and cold compile"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The acceptance property: over random workloads (with register state),
    /// random context counts, and random per-context perturbations — from a
    /// single substituted gate up to half the netlist — delta compilation
    /// against a stale base produces exactly the artifact a cold compile
    /// produces. Reuse is an optimization of time, never of content.
    #[test]
    fn delta_compile_is_bit_identical_to_cold(
        seed in 0u64..1_000_000,
        n_contexts in 1usize..4,
        mask in 1u32..8,
        rate_sel in 0usize..3,
    ) {
        let params = RandomNetlistParams {
            n_inputs: 6,
            n_gates: 28,
            n_outputs: 5,
            dff_fraction: 0.3,
        };
        let base: Vec<Netlist> = (0..n_contexts)
            .map(|c| random_netlist(params, seed.wrapping_add(c as u64)))
            .collect();
        // Perturb the contexts selected by `mask` (at least one — masks that
        // miss every context fall back to context 0, so the delta path
        // always has real work to prove itself on).
        let rate = [0.04, 0.05, 0.5][rate_sel];
        let hit = |c: usize| mask & (1 << c) != 0;
        let any_hit = (0..n_contexts).any(hit);
        let variant: Vec<Netlist> = base
            .iter()
            .enumerate()
            .map(|(c, n)| {
                if hit(c) || (!any_hit && c == 0) {
                    perturb_netlist(n, rate, seed ^ 0x9e37_79b9 ^ c as u64)
                } else {
                    n.clone()
                }
            })
            .collect();

        let opts = serial();
        let a = arch();
        let base_design = CompiledDesign::compile(&a, &base, &opts).expect("base compiles");
        let (delta, stats) = CompiledDesign::delta_compile_with(
            &a, &variant, &opts, &Recorder::disabled(), &base_design, None,
        )
        .expect("delta compiles");
        let cold = CompiledDesign::compile(&a, &variant, &opts).expect("cold compiles");

        assert_bit_identical(&delta, &cold);

        // The stats must agree with the fingerprints: exactly the contexts
        // whose netlist hash survived perturbation are reused verbatim.
        let base_fp = DesignFingerprint::new(&a, &base, &opts);
        let var_fp = DesignFingerprint::new(&a, &variant, &opts);
        prop_assert_eq!(stats.contexts_total, n_contexts);
        prop_assert_eq!(stats.contexts_reused, base_fp.shared_contexts(&var_fp));
    }
}

#[test]
fn register_initial_state_survives_delta_compile() {
    // A workload dominated by DFFs with nontrivial init values: any reuse
    // bug that drops or reorders register state shows up here.
    let params = RandomNetlistParams {
        n_inputs: 5,
        n_gates: 24,
        n_outputs: 4,
        dff_fraction: 0.6,
    };
    let base: Vec<Netlist> = (0..3).map(|c| random_netlist(params, 77 + c)).collect();
    let mut variant = base.clone();
    variant[1] = perturbed_distinct(&base[1], 0.05, 1234);

    let opts = serial();
    let a = arch();
    let base_design = CompiledDesign::compile(&a, &base, &opts).expect("base compiles");
    let (delta, stats) = CompiledDesign::delta_compile_with(
        &a,
        &variant,
        &opts,
        &Recorder::disabled(),
        &base_design,
        None,
    )
    .expect("delta compiles");
    let cold = CompiledDesign::compile(&a, &variant, &opts).expect("cold compiles");
    assert_bit_identical(&delta, &cold);
    assert_eq!(stats.contexts_total, 3);
    // Contexts 0 and 2 are untouched; context 1 was perturbed.
    assert_eq!(stats.contexts_reused, 2);
}

#[test]
fn delta_handles_context_count_changes_against_the_base() {
    // A variant may have more or fewer contexts than its near-match base:
    // extra contexts compile cold, missing ones just drop.
    let opts = serial();
    let a = arch();
    let two = vec![library::adder(3), library::parity(5)];
    let base_design = CompiledDesign::compile(&a, &two, &opts).expect("base compiles");

    let three = vec![library::adder(3), library::parity(5), library::counter(4)];
    let (grown, stats) = CompiledDesign::delta_compile_with(
        &a,
        &three,
        &opts,
        &Recorder::disabled(),
        &base_design,
        None,
    )
    .expect("delta compiles");
    assert_eq!(stats.contexts_total, 3);
    assert_eq!(stats.contexts_reused, 2, "both shared contexts reused");
    assert_bit_identical(
        &grown,
        &CompiledDesign::compile(&a, &three, &opts).expect("cold"),
    );

    let one = vec![library::parity(5)];
    let (shrunk, stats) = CompiledDesign::delta_compile_with(
        &a,
        &one,
        &opts,
        &Recorder::disabled(),
        &base_design,
        None,
    )
    .expect("delta compiles");
    assert_eq!(stats.contexts_total, 1);
    // parity(5) sits at context 0 in `one` but context 1 in the base:
    // position-wise matching means it recompiles, not misreuses.
    assert_eq!(stats.contexts_reused, 0);
    assert_bit_identical(
        &shrunk,
        &CompiledDesign::compile(&a, &one, &opts).expect("cold"),
    );
}

#[test]
fn near_match_submission_delta_compiles_and_matches_cold_artifact() {
    let rec = Recorder::enabled();
    let server = Server::with_recorder(ServeConfig::default().with_workers(1), &rec);
    let base = vec![
        library::adder(3),
        library::multiplier(3),
        library::parity(6),
    ];
    let mut variant = base.clone();
    variant[2] = perturbed_distinct(&base[2], 0.05, 42);

    let cold = server
        .submit_compile(CompileJob::new(arch(), base).with_options(serial()))
        .expect("accepted")
        .wait()
        .expect("compiles");
    assert!(!cold.cache_hit);
    assert!(cold.delta.is_none(), "cold compile reports no delta stats");

    let near = server
        .submit_compile(CompileJob::new(arch(), variant.clone()).with_options(serial()))
        .expect("accepted")
        .wait()
        .expect("compiles");
    assert!(!near.cache_hit, "near match is not an exact hit");
    let stats = near.delta.expect("near match must take the delta path");
    assert_eq!(stats.contexts_total, 3);
    assert_eq!(stats.contexts_reused, 2, "untouched contexts reused");

    // The served delta artifact is bit-identical to a server-free cold
    // compile of the perturbed request.
    let direct = CompiledDesign::compile(&arch(), &variant, &serial()).expect("direct compile");
    assert_bit_identical(&near.design, &direct);

    // And the delta-compiled design is itself cached under its own key.
    let repeat = server
        .submit_compile(CompileJob::new(arch(), variant).with_options(serial()))
        .expect("accepted")
        .wait()
        .expect("compiles");
    assert!(repeat.cache_hit, "delta result serves later exact hits");

    let report = server.report();
    assert_eq!(report.cache_near_hits, 1);
    assert_eq!(report.delta_contexts_reused, 2);
    assert_eq!(report.cache_hits, 1);
    assert_eq!(report.cache_misses, 2);
}

#[test]
fn deadline_expiring_mid_service_fails_between_context_phases() {
    let rec = Recorder::enabled();
    let server = Server::with_recorder(ServeConfig::default().with_workers(1), &rec);
    // The worker is idle, so the queue wait is microseconds — but the first
    // context alone takes far longer than the deadline, so the budget check
    // between per-context compile phases is what must fire. Retry a few
    // times so a pathological scheduler stall at dequeue (which would expire
    // the job in-queue instead) cannot flake the test.
    let mut in_service = false;
    for _ in 0..3 {
        let doomed = server
            .submit_compile(
                CompileJob::new(arch(), vec![library::multiplier(4); 3])
                    .with_options(serial())
                    .with_deadline(Duration::from_millis(3)),
            )
            .expect("accepted");
        match doomed.wait() {
            Err(ServeError::Deadline { .. }) => {}
            Ok(_) => panic!("a 3ms deadline cannot cover three multiplier contexts"),
            Err(e) => panic!("wrong error for mid-service expiry: {e}"),
        }
        if server.report().jobs_expired_in_service >= 1 {
            in_service = true;
            break;
        }
    }
    assert!(
        in_service,
        "deadline must be caught between compile phases, not only at dequeue"
    );
    let report = server.report();
    // Breakdown, not a new conservation bucket: in-service expiries are
    // failed jobs that also consumed worker time.
    assert_eq!(report.jobs_failed, report.jobs_expired_in_service);
    assert_eq!(
        report.jobs_submitted,
        report.jobs_completed + report.jobs_failed + report.jobs_expired
    );
}

#[test]
fn zero_cache_capacity_disables_caching_entirely() {
    let rec = Recorder::enabled();
    let server = Server::with_recorder(
        ServeConfig::default()
            .with_workers(1)
            .with_cache_capacity(0),
        &rec,
    );
    let job = || CompileJob::new(arch(), vec![library::adder(2)]).with_options(serial());
    let first = server
        .submit_compile(job())
        .expect("accepted")
        .wait()
        .expect("compiles");
    let second = server
        .submit_compile(job())
        .expect("accepted")
        .wait()
        .expect("compiles");
    assert!(!first.cache_hit);
    assert!(
        !second.cache_hit,
        "capacity 0 must disable caching, not clamp to 1"
    );
    assert!(second.delta.is_none(), "no retained base, so no delta path");
    assert_eq!(server.cached_designs(), 0);
    let report = server.report();
    assert_eq!(report.cache_hits, 0);
    assert_eq!(report.cache_near_hits, 0);
    assert_eq!(report.cache_misses, 2);
}
