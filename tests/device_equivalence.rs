//! Integration: long-running randomized equivalence between the compiled
//! fabric and the golden netlists, with aggressive context switching.

use mcfpga::netlist::{library, workload, RandomNetlistParams};
use mcfpga::prelude::*;
use mcfpga::sim::Device;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn long_random_equivalence_run() {
    let arch = ArchSpec::paper_default();
    let w = workload(
        RandomNetlistParams {
            n_inputs: 8,
            n_gates: 80,
            n_outputs: 8,
            dff_fraction: 0.15,
        },
        4,
        0.08,
        1234,
    );
    let mut dev = Device::compile(&arch, &w).unwrap();
    check_device_equivalence(&mut dev, &w, 400, 1234).unwrap();
}

#[test]
fn equivalence_over_many_seeds() {
    let arch = ArchSpec::paper_default();
    for seed in 100..110u64 {
        let w = workload(
            RandomNetlistParams {
                n_inputs: 6,
                n_gates: 45,
                n_outputs: 5,
                dff_fraction: if seed % 3 == 0 { 0.2 } else { 0.0 },
            },
            4,
            0.1,
            seed,
        );
        let mut dev = Device::compile(&arch, &w).unwrap();
        check_device_equivalence(&mut dev, &w, 50, seed).unwrap();
    }
}

#[test]
fn sequential_state_is_bit_exact_across_many_switches() {
    // A counter replicated over contexts: after N enabled cycles spread
    // arbitrarily across contexts, the count must be exactly N.
    let arch = ArchSpec::paper_default();
    let cnt = library::counter(6);
    let contexts = vec![cnt.clone(); 4];
    let mut dev = Device::compile(&arch, &contexts).unwrap();
    let mut rng = StdRng::seed_from_u64(55);
    let mut model = 0u64; // software mirror of the register state
    for cycle in 0..200 {
        dev.switch_context(rng.gen_range(0..4));
        let en = rng.gen_bool(0.7);
        let out = dev.step(&[en]);
        // step returns the pre-clock outputs: the value *before* this edge.
        let value: u64 = out.iter().enumerate().map(|(i, &b)| (b as u64) << i).sum();
        assert_eq!(value, model, "cycle {cycle}");
        if en {
            model = (model + 1) % 64;
        }
    }
}

#[test]
fn fir_filter_streams_correctly_on_fabric() {
    let arch = ArchSpec::paper_default();
    let fir = library::fir4(4, [1, 2, 1, 0]);
    let contexts = vec![fir.clone(); 4];
    let mut dev = Device::compile(&arch, &contexts).unwrap();
    let mut st = fir.initial_state();
    let mut rng = StdRng::seed_from_u64(77);
    for cycle in 0..80 {
        if cycle % 9 == 0 {
            dev.switch_context(rng.gen_range(0..4));
        }
        let x: Vec<bool> = (0..4).map(|_| rng.gen_bool(0.5)).collect();
        let expect = fir.step(&x, &mut st).unwrap();
        assert_eq!(dev.step(&x), expect, "cycle {cycle}");
    }
}

#[test]
fn alu_all_opcodes_on_fabric() {
    let arch = ArchSpec::paper_default();
    let alu = library::alu(4);
    let contexts = vec![alu.clone(); 4];
    let mut dev = Device::compile(&arch, &contexts).unwrap();
    for x in 0..16u64 {
        for op in 0..4u64 {
            let mut inputs: Vec<bool> = (0..4).map(|i| (x >> i) & 1 == 1).collect();
            inputs.extend((0..4).map(|i| ((x ^ 0b1010) >> i) & 1 == 1));
            inputs.push(op & 1 == 1);
            inputs.push(op & 2 == 2);
            let expect = alu.eval_comb(&inputs).unwrap();
            assert_eq!(dev.step(&inputs), expect, "x={x} op={op}");
        }
    }
}
