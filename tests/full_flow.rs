//! Integration: the complete flow (map -> share -> place -> route ->
//! logic-block construction -> simulate) over the circuit library, on both
//! device flavours.

use mcfpga::netlist::{library, workload, RandomNetlistParams};
use mcfpga::prelude::*;
use mcfpga::sim::Device;

#[test]
fn every_library_circuit_compiles_and_verifies_replicated() {
    let arch = ArchSpec::paper_default();
    for circuit in library::benchmark_suite() {
        let contexts = vec![circuit.clone(); 4];
        let mut dev =
            Device::compile(&arch, &contexts).unwrap_or_else(|e| panic!("{}: {e}", circuit.name()));
        dev.check_routing()
            .unwrap_or_else(|e| panic!("{}: {e}", circuit.name()));
        check_device_equivalence(&mut dev, &contexts, 30, 7)
            .unwrap_or_else(|e| panic!("{}: {e}", circuit.name()));
        // Fully replicated contexts collapse to one plane everywhere.
        assert_eq!(dev.report().mean_planes, 1.0, "{}", circuit.name());
    }
}

#[test]
fn perturbed_workloads_compile_and_verify_across_change_rates() {
    let arch = ArchSpec::paper_default();
    for (seed, rate) in [(1u64, 0.02), (2, 0.05), (3, 0.15), (4, 0.40)] {
        let w = workload(
            RandomNetlistParams {
                n_inputs: 7,
                n_gates: 55,
                n_outputs: 6,
                dff_fraction: 0.1,
            },
            4,
            rate,
            seed,
        );
        let mut dev = Device::compile(&arch, &w).unwrap();
        dev.check_routing().unwrap();
        check_device_equivalence(&mut dev, &w, 60, seed).unwrap();
        let r = dev.report();
        assert!(r.mean_planes >= 1.0 && r.mean_planes <= 4.0);
    }
}

#[test]
fn plane_demand_tracks_change_rate_end_to_end() {
    let arch = ArchSpec::paper_default();
    let params = RandomNetlistParams {
        n_inputs: 8,
        n_gates: 70,
        n_outputs: 8,
        dff_fraction: 0.0,
    };
    let low = Device::compile(&arch, &workload(params, 4, 0.02, 9)).unwrap();
    let high = Device::compile(&arch, &workload(params, 4, 0.35, 9)).unwrap();
    assert!(
        low.report().mean_planes < high.report().mean_planes,
        "low {} vs high {}",
        low.report().mean_planes,
        high.report().mean_planes
    );
}

#[test]
fn heterogeneous_device_runs_every_context_correctly() {
    let arch = ArchSpec::paper_default();
    let circuits = vec![
        library::adder(4),
        library::subtractor(4),
        library::parity(8),
        library::gray_encoder(6),
    ];
    let mut dev = MultiDevice::compile(&arch, &circuits).unwrap();
    dev.check_routing().unwrap();
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(31);
    for _ in 0..60 {
        let c = rng.gen_range(0..circuits.len());
        dev.switch_context(c);
        let n_in = circuits[c].inputs().len();
        let inputs: Vec<bool> = (0..n_in).map(|_| rng.gen_bool(0.5)).collect();
        assert_eq!(
            dev.step(&inputs),
            circuits[c].eval_comb(&inputs).unwrap(),
            "context {c}"
        );
    }
}

#[test]
fn bigger_grids_and_more_contexts_compile() {
    // 8-context fabric on a larger grid.
    let arch = ArchSpec::paper_default().with_grid(10, 10).with_contexts(8);
    let w = workload(
        RandomNetlistParams {
            n_inputs: 6,
            n_gates: 40,
            n_outputs: 5,
            dff_fraction: 0.0,
        },
        8,
        0.05,
        17,
    );
    let mut dev = Device::compile(&arch, &w).unwrap();
    check_device_equivalence(&mut dev, &w, 40, 17).unwrap();
}

#[test]
fn workload_larger_than_contexts_is_rejected() {
    let arch = ArchSpec::paper_default().with_contexts(2);
    let w = workload(RandomNetlistParams::default(), 4, 0.05, 3);
    let result = std::panic::catch_unwind(|| Device::compile(&arch, &w));
    assert!(
        result.is_err(),
        "4 contexts on a 2-context device must panic"
    );
}

#[test]
fn extended_library_compiles_and_verifies() {
    use mcfpga::netlist::library2;
    let arch = ArchSpec::paper_default();
    for circuit in library2::extended_suite() {
        let contexts = vec![circuit.clone(); 4];
        let mut dev =
            Device::compile(&arch, &contexts).unwrap_or_else(|e| panic!("{}: {e}", circuit.name()));
        check_device_equivalence(&mut dev, &contexts, 30, 13)
            .unwrap_or_else(|e| panic!("{}: {e}", circuit.name()));
    }
}

#[test]
fn adaptive_compile_equivalence_across_the_library() {
    use mcfpga::netlist::library;
    let arch = ArchSpec::paper_default();
    for circuit in [
        library::adder(4),
        library::comparator(4),
        library::gray_encoder(6),
    ] {
        let contexts = vec![circuit.clone(); 4];
        let mut dev = Device::compile_adaptive(&arch, &contexts).unwrap();
        assert_eq!(
            dev.report().granularity,
            6,
            "{} fully shared",
            circuit.name()
        );
        check_device_equivalence(&mut dev, &contexts, 40, 21).unwrap();
    }
}

#[test]
fn text_format_survives_the_full_flow() {
    // Netlist -> text -> netlist -> device, still equivalent to the original.
    use mcfpga::netlist::{from_text, library, to_text};
    let arch = ArchSpec::paper_default();
    let original = library::alu(4);
    let reparsed = from_text(&to_text(&original)).unwrap();
    let contexts = vec![reparsed; 4];
    let mut dev = Device::compile(&arch, &contexts).unwrap();
    // Check against the *original* netlist: the text roundtrip must not
    // have changed behaviour.
    let originals = vec![original; 4];
    check_device_equivalence(&mut dev, &originals, 50, 8).unwrap();
}
