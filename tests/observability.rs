//! Integration test for the observability layer: a full instrumented
//! `core::flow` run must produce non-empty spans and metrics for every
//! pipeline phase, and the run report must survive a JSON round trip.

use mcfpga::netlist::library;
use mcfpga::prelude::*;

/// Every phase the pipeline is expected to time.
const PHASES: &[&str] = &[
    "flow",
    "map",
    "place",
    "route",
    "columns",
    "logic_blocks",
    "rcm",
    "sim",
    "area",
];

fn run_instrumented_flow() -> (mcfpga::flow::FlowOutcome, Recorder) {
    let arch = ArchSpec::paper_default();
    let circuits = vec![
        library::adder(4),
        library::parity(8),
        library::comparator(4),
    ];
    let rec = Recorder::enabled();
    let outcome = mcfpga::flow::run_flow_with(&arch, &circuits, 10, &rec).expect("flow compiles");
    (outcome, rec)
}

#[test]
fn full_flow_produces_spans_for_every_phase() {
    let (outcome, _rec) = run_instrumented_flow();
    let report = &outcome.report;
    for phase in PHASES {
        let n = report.spans.iter().filter(|s| s.name == *phase).count();
        assert!(n > 0, "no span recorded for phase {phase:?}");
    }
    // Phase spans nest under the flow span.
    for name in ["map", "rcm", "sim", "area"] {
        let span = report
            .spans
            .iter()
            .find(|s| s.name == name)
            .expect("span exists");
        assert_eq!(span.path, format!("flow/{name}"), "span {name} mis-nested");
    }
    // The flow span dominates each phase it contains.
    let flow_us = report.span_total_us("flow");
    for phase in &PHASES[1..] {
        assert!(
            report.span_total_us(phase) <= flow_us,
            "phase {phase} longer than the whole flow"
        );
    }
}

#[test]
fn full_flow_populates_the_metrics_registry() {
    let (outcome, _rec) = run_instrumented_flow();
    let report = &outcome.report;

    // Counters from every instrumented layer.
    assert!(report.counter("route.iterations") >= 3, "3 contexts routed");
    assert!(report.counter("anneal.temperature_steps") > 0);
    assert!(report.counter("place.moves_accepted") > 0);
    assert!(
        report.counter("place.moves_accepted") <= report.counter("place.moves_attempted"),
        "cannot accept more moves than attempted"
    );
    assert!(report.counter("rcm.columns_synthesized") > 0);
    assert_eq!(report.counter("sim.context_switches"), 2, "0->1->2");
    assert_eq!(report.counter("sim.steps"), 30, "10 cycles x 3 contexts");
    assert_eq!(report.counter("route.nonconverged_contexts"), 0);

    // The SE-per-column histogram matches the synthesized column count.
    let hist = report
        .histogram("rcm.ses_per_column")
        .expect("SE histogram recorded");
    assert_eq!(hist.count as u64, report.counter("rcm.columns_synthesized"));
    assert!(hist.min >= 1.0, "every column needs at least one SE");
    assert!(hist.p50 <= hist.p99);

    // Headline gauges are present and sane.
    let cmos = report.gauge("area.cmos_ratio").expect("cmos gauge");
    let fepg = report.gauge("area.fepg_ratio").expect("fepg gauge");
    assert!(cmos > 0.0 && fepg > 0.0);
    assert!(fepg < cmos, "FePG must beat CMOS at equal change rate");
}

#[test]
fn flow_report_round_trips_through_json() {
    let (outcome, _rec) = run_instrumented_flow();
    let json = serde_json::to_string_pretty(&outcome.report).expect("serialize");
    let back: RunReport = serde_json::from_str(&json).expect("parse");
    assert_eq!(back, outcome.report);
    assert!(json.contains("rcm.ses_per_column"));
}

#[test]
fn disabled_recorder_flow_is_equivalent_and_silent() {
    let arch = ArchSpec::paper_default();
    let circuits = vec![library::adder(4)];
    let rec = Recorder::disabled();
    let outcome = mcfpga::flow::run_flow_with(&arch, &circuits, 5, &rec).expect("flow compiles");
    assert!(outcome.report.spans.is_empty());
    assert!(outcome.report.counters.is_empty());
    // Identical compile result to the instrumented run (determinism).
    let rec2 = Recorder::enabled();
    let outcome2 = mcfpga::flow::run_flow_with(&arch, &circuits, 5, &rec2).expect("flow compiles");
    assert_eq!(outcome.cmos.ratio, outcome2.cmos.ratio);
    assert_eq!(
        outcome.device.critical_delay(),
        outcome2.device.critical_delay()
    );
}
