//! Integration test for the observability layer: a full instrumented
//! `core::flow` run must produce non-empty spans and metrics for every
//! pipeline phase, and the run report must survive a JSON round trip.

use mcfpga::netlist::library;
use mcfpga::prelude::*;

/// Every phase the pipeline is expected to time.
const PHASES: &[&str] = &[
    "flow",
    "map",
    "place",
    "route",
    "columns",
    "logic_blocks",
    "rcm",
    "sim",
    "area",
];

fn run_instrumented_flow() -> (mcfpga::flow::FlowOutcome, Recorder) {
    let arch = ArchSpec::paper_default();
    let circuits = vec![
        library::adder(4),
        library::parity(8),
        library::comparator(4),
    ];
    let rec = Recorder::enabled();
    let outcome = mcfpga::flow::Flow::builder()
        .recorder(&rec)
        .sim_cycles(10)
        .run(&arch, &circuits)
        .expect("flow compiles");
    (outcome, rec)
}

#[test]
fn full_flow_produces_spans_for_every_phase() {
    let (outcome, _rec) = run_instrumented_flow();
    let report = &outcome.report;
    for phase in PHASES {
        let n = report.spans.iter().filter(|s| s.name == *phase).count();
        assert!(n > 0, "no span recorded for phase {phase:?}");
    }
    // Phase spans nest under the flow span.
    for name in ["map", "rcm", "sim", "area"] {
        let span = report
            .spans
            .iter()
            .find(|s| s.name == name)
            .expect("span exists");
        assert_eq!(span.path, format!("flow/{name}"), "span {name} mis-nested");
    }
    // The flow span dominates each phase it contains.
    let flow_us = report.span_total_us("flow");
    for phase in &PHASES[1..] {
        assert!(
            report.span_total_us(phase) <= flow_us,
            "phase {phase} longer than the whole flow"
        );
    }
}

#[test]
fn full_flow_populates_the_metrics_registry() {
    let (outcome, _rec) = run_instrumented_flow();
    let report = &outcome.report;

    // Counters from every instrumented layer.
    assert!(report.counter("route.iterations") >= 3, "3 contexts routed");
    assert!(report.counter("anneal.temperature_steps") > 0);
    assert!(report.counter("place.moves_accepted") > 0);
    assert!(
        report.counter("place.moves_accepted") <= report.counter("place.moves_attempted"),
        "cannot accept more moves than attempted"
    );
    assert!(report.counter("rcm.columns_synthesized") > 0);
    assert_eq!(report.counter("sim.context_switches"), 2, "0->1->2");
    assert_eq!(report.counter("sim.steps"), 30, "10 cycles x 3 contexts");
    assert_eq!(report.counter("route.nonconverged_contexts"), 0);

    // The SE-per-column histogram matches the synthesized column count.
    let hist = report
        .histogram("rcm.ses_per_column")
        .expect("SE histogram recorded");
    assert_eq!(hist.count as u64, report.counter("rcm.columns_synthesized"));
    assert!(hist.min >= 1.0, "every column needs at least one SE");
    assert!(hist.p50 <= hist.p99);

    // Headline gauges are present and sane.
    let cmos = report.gauge("area.cmos_ratio").expect("cmos gauge");
    let fepg = report.gauge("area.fepg_ratio").expect("fepg gauge");
    assert!(cmos > 0.0 && fepg > 0.0);
    assert!(fepg < cmos, "FePG must beat CMOS at equal change rate");
}

#[test]
fn flow_report_round_trips_through_json() {
    let (outcome, _rec) = run_instrumented_flow();
    let json = serde_json::to_string_pretty(&outcome.report).expect("serialize");
    let back: RunReport = serde_json::from_str(&json).expect("parse");
    assert_eq!(back, outcome.report);
    assert!(json.contains("rcm.ses_per_column"));
}

#[test]
fn flow_trace_exports_valid_chrome_json() {
    use mcfpga::obs::TracePhase;
    let (_outcome, rec) = run_instrumented_flow();

    // The raw event stream pairs every Begin with an End on the same thread
    // (per-thread stacks can only close in LIFO order).
    let events = rec.trace_events();
    assert!(!events.is_empty(), "instrumented flow must emit events");
    let mut open: std::collections::HashMap<u64, Vec<&str>> = std::collections::HashMap::new();
    for e in &events {
        match e.phase {
            TracePhase::Begin => open.entry(e.tid).or_default().push(&e.name),
            TracePhase::End => {
                let top = open
                    .get_mut(&e.tid)
                    .and_then(Vec::pop)
                    .expect("End without matching Begin");
                assert_eq!(top, e.name, "mis-nested Begin/End on tid {}", e.tid);
            }
            TracePhase::Instant => {}
        }
    }
    assert!(open.values().all(Vec::is_empty), "unclosed Begin events");
    // Every compile_context event is tagged with an in-range worker id.
    let workers = mcfpga::sim::CompileOptions::default().resolved_workers(3);
    let compile_begins: Vec<_> = events
        .iter()
        .filter(|e| e.name == "compile_context" && e.phase == TracePhase::Begin)
        .collect();
    assert_eq!(compile_begins.len(), 3, "one per context");
    for e in &compile_begins {
        assert!((e.arg_u64("worker").expect("worker arg") as usize) < workers);
    }

    // The Chrome export parses as JSON and carries spans ("X"), events, and
    // the context-switch payloads with every required key.
    let doc = serde_json::parse(&rec.chrome_trace_json()).expect("valid trace JSON");
    let trace_events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(trace_events.len() >= events.len());
    let phases: std::collections::BTreeSet<&str> = trace_events
        .iter()
        .filter_map(|e| e.get("ph").and_then(|v| v.as_str()))
        .collect();
    for ph in ["X", "B", "E", "i"] {
        assert!(phases.contains(ph), "missing phase {ph} in export");
    }
    let switch = trace_events
        .iter()
        .find(|e| e.get("name").and_then(|v| v.as_str()) == Some("context_switch"))
        .expect("context_switch event exported");
    let args = switch.get("args").expect("args object");
    for key in [
        "from",
        "to",
        "bits_flipped",
        "change_rate",
        "n_columns",
        "n_constant",
        "n_single_bit",
        "n_general",
        "se_cost_total",
    ] {
        assert!(args.get(key).is_some(), "context_switch missing {key}");
    }
}

#[test]
fn concurrent_recorder_clones_get_distinct_thread_ids() {
    // The parallel compile pool reuses one recorder clone per worker thread;
    // this pins down the property it relies on — every emitting thread gets
    // its own tid — independent of how many cores the test machine has.
    let rec = Recorder::enabled();
    let handles: Vec<_> = (0..4)
        .map(|w| {
            let rec = rec.clone();
            std::thread::spawn(move || {
                let _g = rec.begin("worker", &[("worker", (w as u64).into())]);
                rec.instant("tick", &[]);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let events = rec.trace_events();
    let tids: std::collections::BTreeSet<u64> = events.iter().map(|e| e.tid).collect();
    assert_eq!(tids.len(), 4, "4 threads must appear as 4 distinct tids");
    // Each thread's Begin, Instant, and End share that thread's tid.
    for tid in tids {
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.tid == tid)
            .map(|e| e.name.as_str())
            .collect();
        assert_eq!(names, ["worker", "tick", "worker"]);
    }
}

#[test]
fn reconfig_telemetry_matches_direct_measurement() {
    let (outcome, rec) = run_instrumented_flow();
    let telemetry = outcome
        .report
        .reconfig
        .as_ref()
        .expect("instrumented flow attaches reconfig telemetry");
    assert_eq!(
        telemetry.n_switches as u64,
        outcome.report.counter("sim.context_switches")
    );
    assert_eq!(telemetry.switches.len(), telemetry.n_switches);

    // Every per-switch payload agrees with measure_change_rate computed
    // directly on the device's own switch bitstreams.
    let device = &outcome.device;
    for s in &telemetry.switches {
        let a = device.switch_state_bits(s.from_context);
        let b = device.switch_state_bits(s.to_context);
        assert_eq!(
            s.change_rate,
            mcfpga::config::measure_change_rate(&a, &b),
            "switch {} -> {}",
            s.from_context,
            s.to_context
        );
        let flipped = a.iter().zip(&b).filter(|(x, y)| x != y).count() as u64;
        assert_eq!(s.bits_flipped, flipped);
    }
    assert_eq!(
        telemetry.total_bits_flipped,
        telemetry
            .switches
            .iter()
            .map(|s| s.bits_flipped)
            .sum::<u64>()
    );

    // The pattern-class census partitions the device's columns, and the SE
    // cost agrees with synthesizing every column directly.
    let columns = device.switch_usage().columns();
    let ctx = device.arch().context_id();
    assert_eq!(telemetry.n_columns, columns.len());
    assert_eq!(
        telemetry.n_constant + telemetry.n_single_bit + telemetry.n_general,
        telemetry.n_columns,
        "pattern classes must sum to the column total"
    );
    let se: u64 = columns
        .iter()
        .map(|&col| mcfpga::rcm::synthesize(col, ctx).cost().n_ses as u64)
        .sum();
    assert_eq!(telemetry.se_cost_total, se);

    // The summary survives the report's JSON round trip (it rides inside
    // BENCH_flow.json).
    let json = serde_json::to_string(&outcome.report).expect("serialize");
    let back: RunReport = serde_json::from_str(&json).expect("parse");
    assert_eq!(back.reconfig.as_ref(), Some(telemetry));
    let _ = rec;
}

mod histogram_props {
    //! The bucketed streaming histogram vs the exact reference: across
    //! adversarial sample distributions, every tracked quantile must land
    //! within the documented tolerance (≈1% relative, plus the absolute
    //! `MIN_TRACKED` slack for sub-resolution values).
    use mcfpga::obs::histogram::{LogHistogram, MIN_TRACKED};
    use mcfpga::obs::percentile;
    use proptest::collection::vec;
    use proptest::prelude::*;

    /// Decode one `(mode, raw)` pair into a sample from that mode's
    /// distribution — uniform integers, log-spread over 18 decades,
    /// a repeated constant, sub-resolution values straddling the underflow
    /// bucket, and large magnitudes.
    fn decode(mode: u8, raw: u64) -> f64 {
        match mode % 5 {
            0 => (raw % 10_000 + 1) as f64,
            1 => 10f64.powf((raw % 1800) as f64 / 100.0 - 6.0),
            2 => 42.0,
            3 => (raw % 1000) as f64 * 1e-7,
            _ => (raw % 1_000_000 + 1) as f64 * 1e6,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn bucketed_quantiles_track_exact_percentiles(
            samples in vec((0u8..5u8, any::<u64>()), 1..400usize),
            split in any::<u64>(),
        ) {
            let values: Vec<f64> = samples.iter().map(|&(m, r)| decode(m, r)).collect();

            // Split recording across two histograms and merge, so the
            // property also covers cross-recorder aggregation.
            let mut a = LogHistogram::new();
            let mut b = LogHistogram::new();
            for (i, &v) in values.iter().enumerate() {
                if (split >> (i % 64)) & 1 == 0 {
                    a.record(v);
                } else {
                    b.record(v);
                }
            }
            a.merge(&b);

            // Count, sum, min, max are exact.
            prop_assert_eq!(a.count(), values.len() as u64);
            let sum: f64 = values.iter().sum();
            prop_assert!((a.sum() - sum).abs() <= 1e-9 * sum.abs().max(1.0));
            let mut sorted = values.clone();
            sorted.sort_by(|x, y| x.partial_cmp(y).unwrap());
            prop_assert_eq!(a.min(), sorted[0]);
            prop_assert_eq!(a.max(), sorted[sorted.len() - 1]);

            // Quantiles within 1% relative of the exact nearest-rank
            // reference (plus MIN_TRACKED absolute slack: values below the
            // tracked range collapse into the underflow bucket).
            for q in [0.0, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0] {
                let exact = percentile(&sorted, q * 100.0);
                let approx = a.quantile(q);
                let tol = 0.01 * exact.abs() + MIN_TRACKED;
                prop_assert!(
                    (approx - exact).abs() <= tol,
                    "q={}: approx {} vs exact {} (tol {})", q, approx, exact, tol
                );
            }
        }
    }
}

#[test]
fn disabled_recorder_flow_is_equivalent_and_silent() {
    let arch = ArchSpec::paper_default();
    let circuits = vec![library::adder(4)];
    let rec = Recorder::disabled();
    let outcome = mcfpga::flow::run_flow(&arch, &circuits, 5, &rec).expect("flow compiles");
    assert!(outcome.report.spans.is_empty());
    assert!(outcome.report.counters.is_empty());
    assert!(rec.trace_events().is_empty(), "disabled recorder traced");
    assert!(outcome.report.reconfig.is_none());
    // Identical compile result to the instrumented run (determinism).
    let rec2 = Recorder::enabled();
    let outcome2 = mcfpga::flow::run_flow(&arch, &circuits, 5, &rec2).expect("flow compiles");
    assert_eq!(outcome.cmos.ratio, outcome2.cmos.ratio);
    assert_eq!(
        outcome.device.critical_delay(),
        outcome2.device.critical_delay()
    );
}
