//! Cross-crate properties of the fabric signal probes: armed probes must
//! record exactly what the 64-lane kernel computed (checked lane by lane
//! against scalar replays, across context switches and random register
//! state), and probing must never perturb the simulation itself — the
//! batched outputs with probes armed, disarmed, or never armed are
//! bit-identical.

use mcfpga::netlist::{random_netlist, Netlist, RandomNetlistParams};
use mcfpga::prelude::*;
use mcfpga::sim::{ProbeSet, LANES, SUPPORTED_WIDTHS};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

fn random_circuits(seed: u64, n_ctx: usize) -> Vec<Netlist> {
    (0..n_ctx)
        .map(|c| {
            random_netlist(
                RandomNetlistParams {
                    n_inputs: 5,
                    n_gates: 25,
                    n_outputs: 3,
                    dff_fraction: 0.15,
                },
                seed.wrapping_add(c as u64 * 7919),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Probes armed on every context's outputs and registers capture, word
    /// for word, what 64 scalar replays observe on each lane — across
    /// random word-boundary context switches and random initial registers.
    #[test]
    fn probe_samples_match_scalar_replay_on_all_lanes(
        seed in 0u64..10_000,
        n_ctx in 1usize..=3,
    ) {
        let arch = ArchSpec::paper_default();
        let circuits = random_circuits(seed, n_ctx);
        let mut dev = MultiDevice::compile(&arch, &circuits).unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
        let init: Vec<Vec<bool>> = (0..n_ctx)
            .map(|c| (0..dev.registers(c).len()).map(|_| rng.gen_bool(0.5)).collect())
            .collect();
        let words = 5usize;
        let schedule: Vec<(usize, Vec<u64>)> = (0..words)
            .map(|_| {
                (
                    rng.gen_range(0..n_ctx),
                    (0..5).map(|_| rng.next_u64()).collect(),
                )
            })
            .collect();

        // Arm every output and every register of every context.
        let n_outs: Vec<usize> = (0..n_ctx).map(|c| dev.n_outputs(c).unwrap()).collect();
        for (c, &n_out) in n_outs.iter().enumerate() {
            let mut set = ProbeSet::new();
            for name in &dev.probe_signals(c).unwrap()[..n_out] {
                set = set.tap(name);
            }
            for r in 0..dev.registers(c).len() {
                set = set.tap(&format!("reg{r}"));
            }
            dev.arm_probes(c, &set).unwrap();
        }

        // Batched run from the random register state.
        for (c, bits) in init.iter().enumerate() {
            dev.set_registers(c, bits);
        }
        let mut batch_out = Vec::with_capacity(words);
        for (c, inputs) in &schedule {
            dev.switch_context(*c);
            batch_out.push(dev.step_batch(inputs));
        }

        // The output probes' samples are exactly the batched output words of
        // their context's steps, in schedule order.
        for (c, &n_out) in n_outs.iter().enumerate() {
            let steps: Vec<usize> = schedule
                .iter()
                .enumerate()
                .filter(|(_, (sc, _))| *sc == c)
                .map(|(w, _)| w)
                .collect();
            let captures = dev.probe_captures(c).unwrap();
            for (o, cap) in captures.iter().take(n_out).enumerate() {
                prop_assert_eq!(cap.samples.len(), steps.len());
                for (s, &word) in steps.iter().enumerate() {
                    prop_assert_eq!(
                        cap.samples[s],
                        batch_out[word][o],
                        "context {} output {} step {}",
                        c,
                        o,
                        s
                    );
                }
            }
        }

        // Register probes, lane by lane against scalar replays: the sample
        // at each step holds the pre-edge register value — what the cycle's
        // logic and outputs actually saw.
        for lane in 0..LANES {
            let mut regs_before: Vec<Vec<Vec<bool>>> = vec![Vec::new(); n_ctx];
            for (c, bits) in init.iter().enumerate() {
                dev.set_registers(c, bits);
            }
            for (c, inputs) in &schedule {
                dev.switch_context(*c);
                regs_before[*c].push(dev.registers(*c).to_vec());
                let bits: Vec<bool> = inputs.iter().map(|iw| (iw >> lane) & 1 == 1).collect();
                dev.step(&bits);
            }
            for c in 0..n_ctx {
                let captures = dev.probe_captures(c).unwrap();
                for (r, cap) in captures.iter().skip(n_outs[c]).enumerate() {
                    for (s, &sample) in cap.samples.iter().enumerate() {
                        prop_assert_eq!(
                            (sample >> lane) & 1 == 1,
                            regs_before[c][s][r],
                            "context {} reg {} step {} lane {}",
                            c,
                            r,
                            s,
                            lane
                        );
                    }
                }
            }
        }
    }

    /// Probing never perturbs the simulation: the batched outputs of a
    /// probed run, a probed-then-disarmed run, and a never-probed run are
    /// bit-identical on every lane, and the final register state agrees.
    #[test]
    fn probes_do_not_perturb_the_batched_outputs(
        seed in 0u64..10_000,
        n_ctx in 1usize..=3,
    ) {
        let arch = ArchSpec::paper_default();
        let circuits = random_circuits(seed, n_ctx);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFACE);
        let words = 6usize;
        let schedule: Vec<(usize, Vec<u64>)> = (0..words)
            .map(|_| {
                (
                    rng.gen_range(0..n_ctx),
                    (0..5).map(|_| rng.next_u64()).collect(),
                )
            })
            .collect();
        let run = |dev: &mut MultiDevice| -> Vec<Vec<u64>> {
            dev.reset();
            schedule
                .iter()
                .map(|(c, inputs)| {
                    dev.switch_context(*c);
                    dev.step_batch(inputs)
                })
                .collect()
        };

        let mut plain = MultiDevice::compile(&arch, &circuits).unwrap();
        let baseline = run(&mut plain);

        let mut probed = MultiDevice::compile(&arch, &circuits).unwrap();
        probed.enable_activity_census();
        for c in 0..n_ctx {
            // Tap every probe-able signal through a deliberately tiny ring:
            // overflow (drop-oldest) must not perturb the outputs either.
            let mut set = ProbeSet::new().with_capacity(2);
            for name in probed.probe_signals(c).unwrap() {
                set = set.tap(&name);
            }
            probed.arm_probes(c, &set).unwrap();
        }
        prop_assert_eq!(&run(&mut probed), &baseline, "armed probes perturbed outputs");

        for c in 0..n_ctx {
            probed.disarm_probes(c).unwrap();
            prop_assert!(probed.probe_captures(c).unwrap().is_empty());
        }
        prop_assert_eq!(&run(&mut probed), &baseline, "disarmed probes perturbed outputs");
        for c in 0..n_ctx {
            prop_assert_eq!(probed.registers(c), plain.registers(c), "context {}", c);
        }
    }

    /// Probes and the activity census see *every* lane of a wide throughput
    /// run: at chunk width `W`, each probe records all `W` words per step
    /// (64·W lanes), matching the width-1 captures of the interleaved
    /// streams word for word, and census toggles / lane-cycles equal the
    /// per-stream sums. Observability also pins the kernel to its
    /// unoptimized lowering — the optimizer setting must not change any
    /// sample.
    #[test]
    fn wide_throughput_probes_capture_every_lane(
        seed in 0u64..10_000,
        optimize in any::<bool>(),
    ) {
        let arch = ArchSpec::paper_default();
        let circuits = random_circuits(seed, 1);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xCAFE);
        let n_inputs = 5usize;
        let n_chunks = 6usize;
        let max_width = *SUPPORTED_WIDTHS.last().unwrap();
        let init: Vec<bool> = {
            let dev = MultiDevice::compile(&arch, &circuits).unwrap();
            (0..dev.registers(0).len()).map(|_| rng.gen_bool(0.5)).collect()
        };
        let streams: Vec<Vec<u64>> = (0..max_width)
            .map(|_| (0..n_chunks * n_inputs).map(|_| rng.next_u64()).collect())
            .collect();
        let armed = |dev: &mut MultiDevice| {
            let mut set = ProbeSet::new();
            for name in dev.probe_signals(0).unwrap() {
                set = set.tap(&name);
            }
            dev.arm_probes(0, &set).unwrap();
            dev.enable_activity_census();
            dev.set_registers(0, &init);
        };
        // Width-1 references: one fresh probed device per stream.
        let mut ref_caps = Vec::with_capacity(max_width);
        let mut ref_toggles = Vec::with_capacity(max_width);
        for stream in &streams {
            let mut dev = MultiDevice::compile(&arch, &circuits).unwrap();
            armed(&mut dev);
            dev.run_throughput(0, stream, 1, 1);
            ref_caps.push(dev.probe_captures(0).unwrap());
            ref_toggles.push(dev.activity_census(0).unwrap().toggles_total);
        }
        for &width in SUPPORTED_WIDTHS {
            let mut wide = vec![0u64; n_chunks * n_inputs * width];
            for t in 0..n_chunks {
                for i in 0..n_inputs {
                    for w in 0..width {
                        wide[(t * n_inputs + i) * width + w] = streams[w][t * n_inputs + i];
                    }
                }
            }
            let mut dev = MultiDevice::compile(&arch, &circuits).unwrap();
            dev.set_kernel_options(
                mcfpga::sim::KernelOptions::new().with_optimize(optimize),
            );
            armed(&mut dev);
            // threads > 1 requested: observability must force the ordered
            // serial path rather than fail or drop samples.
            dev.run_throughput(0, &wide, width, 3);
            let captures = dev.probe_captures(0).unwrap();
            prop_assert_eq!(captures.len(), ref_caps[0].len());
            for (p, cap) in captures.iter().enumerate() {
                prop_assert_eq!(cap.samples.len(), n_chunks * width);
                for t in 0..n_chunks {
                    for (w, ref_cap) in ref_caps.iter().enumerate().take(width) {
                        prop_assert_eq!(
                            cap.samples[t * width + w],
                            ref_cap[p].samples[t],
                            "width {} probe {} chunk {} word {}",
                            width,
                            p,
                            t,
                            w
                        );
                    }
                }
                // Lane extraction helper: lane w*64+b of the wide capture is
                // lane b of stream w's width-1 capture.
                let lane = (width - 1) * LANES + 7;
                prop_assert_eq!(
                    cap.lane_bits_wide(width, lane),
                    ref_caps[width - 1][p].lane_bits(7)
                );
            }
            let report = dev.activity_census(0).unwrap();
            prop_assert_eq!(report.lane_cycles, (n_chunks * LANES * width) as u64);
            let want: u64 = ref_toggles[..width].iter().sum();
            prop_assert_eq!(report.toggles_total, want, "width {}", width);
        }
    }
}
