//! Integration tests of the multi-tenant serving layer: backpressure,
//! deadlines, cache identity, and session isolation under concurrency.

use std::time::Duration;

use mcfpga_arch::ArchSpec;
use mcfpga_netlist::{library, Netlist};
use mcfpga_obs::Recorder;
use mcfpga_serve::{CompileJob, ServeConfig, ServeError, Server, SimJob, SubmitError};
use mcfpga_sim::{CompileOptions, MultiDevice};
use proptest::prelude::*;

fn arch() -> ArchSpec {
    ArchSpec::paper_default()
}

/// Serial compile inside jobs: the serve worker pool is the parallelism.
fn serial() -> CompileOptions {
    CompileOptions::default().with_parallel(false)
}

/// A compile heavy enough to occupy a worker while cheap jobs pile up.
fn heavy_circuits() -> Vec<Netlist> {
    vec![
        library::adder(4),
        library::multiplier(3),
        library::alu(4),
        library::popcount(6),
    ]
}

fn cheap_circuits() -> Vec<Netlist> {
    vec![library::adder(2)]
}

#[test]
fn saturated_queue_rejects_with_queue_full_and_accepted_jobs_complete() {
    let rec = Recorder::enabled();
    let server = Server::with_recorder(
        ServeConfig::default()
            .with_workers(1)
            .with_queue_capacity(2),
        &rec,
    );
    // The single worker dequeues this almost immediately and is then busy
    // compiling for a long time relative to the submissions below.
    let heavy = server
        .submit_compile(CompileJob::new(arch(), heavy_circuits()).with_options(serial()))
        .expect("first job accepted");

    let mut accepted = Vec::new();
    let mut rejected = 0usize;
    for _ in 0..5 {
        match server
            .submit_compile(CompileJob::new(arch(), cheap_circuits()).with_options(serial()))
        {
            Ok(handle) => accepted.push(handle),
            Err(SubmitError::QueueFull { capacity }) => {
                assert_eq!(capacity, 2);
                rejected += 1;
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert!(
        rejected >= 1,
        "5 rapid submissions into a 2-slot queue behind a busy worker \
         must trip backpressure"
    );

    // Backpressure rejects loudly but accepted work is never lost.
    heavy.wait().expect("heavy job completes");
    for handle in accepted {
        handle.wait().expect("accepted job completes");
    }
    let report = server.report();
    assert_eq!(report.jobs_rejected, rejected as u64);
    assert_eq!(report.jobs_completed, report.jobs_submitted);
}

#[test]
fn expired_deadline_returns_typed_error_not_a_hang() {
    let rec = Recorder::enabled();
    let server = Server::with_recorder(
        ServeConfig::default()
            .with_workers(1)
            .with_queue_capacity(8),
        &rec,
    );
    // Occupy the worker so the deadline job measurably waits in queue.
    let heavy = server
        .submit_compile(CompileJob::new(arch(), heavy_circuits()).with_options(serial()))
        .expect("accepted");
    let doomed = server
        .submit_compile(
            CompileJob::new(arch(), cheap_circuits())
                .with_options(serial())
                .with_deadline(Duration::ZERO),
        )
        .expect("accepted");
    match doomed.wait() {
        Err(ServeError::Deadline { waited_us: _ }) => {}
        Ok(_) => panic!("zero deadline must expire, not run"),
        Err(e) => panic!("wrong error for expired deadline: {e}"),
    }
    heavy.wait().expect("heavy job unaffected");
    assert_eq!(server.report().jobs_expired, 1);
}

#[test]
fn cache_hit_returns_the_cold_compile_artifact_bit_for_bit() {
    let server = Server::new(ServeConfig::default().with_workers(1));
    let job = || CompileJob::new(arch(), heavy_circuits()).with_options(serial());
    let cold = server
        .submit_compile(job())
        .expect("accepted")
        .wait()
        .expect("compiles");
    let warm = server
        .submit_compile(job())
        .expect("accepted")
        .wait()
        .expect("compiles");
    assert!(!cold.cache_hit, "first submission must compile");
    assert!(warm.cache_hit, "repeat submission must hit cache");
    assert!(
        std::sync::Arc::ptr_eq(&cold.design, &warm.design),
        "cache hit must share the artifact, not copy it"
    );
    assert_ne!(
        cold.session, warm.session,
        "each tenant gets its own session"
    );

    // Bit-identical to a direct, server-free compile of the same content.
    let mut direct =
        MultiDevice::compile_opts(&arch(), &heavy_circuits(), &serial(), &Recorder::disabled())
            .expect("direct compile");
    assert_eq!(warm.design.n_contexts(), direct.n_contexts());
    for c in 0..direct.n_contexts() {
        assert_eq!(
            warm.design.kernel(c),
            direct.kernel(c).expect("context in range"),
            "context {c} kernel diverged from the cold path"
        );
        assert_eq!(
            warm.design.initial_registers(c),
            &direct.initial_registers(c).expect("context in range")[..],
        );
    }
    assert_eq!(cold.design.fingerprint(), warm.design.fingerprint());
    // The parallel schedule is excluded from the content address: it is
    // proven to produce a bit-identical artifact, so it shares the slot.
    let parallel = server
        .submit_compile(CompileJob::new(arch(), heavy_circuits()))
        .expect("accepted")
        .wait()
        .expect("compiles");
    assert!(
        parallel.cache_hit,
        "parallel schedule must share the cache slot"
    );
}

#[test]
fn sim_against_unknown_session_is_a_typed_error() {
    let server = Server::new(ServeConfig::default().with_workers(1));
    let compiled = server
        .submit_compile(CompileJob::new(arch(), cheap_circuits()).with_options(serial()))
        .expect("accepted")
        .wait()
        .expect("compiles");
    assert!(server.close_session(compiled.session));
    assert!(!server.close_session(compiled.session), "already closed");
    let n_in = compiled.design.kernel(0).n_inputs();
    let result = server
        .submit_sim(SimJob::new(compiled.session, 0, vec![vec![0u64; n_in]]))
        .expect("accepted")
        .wait();
    match result {
        Err(ServeError::SessionNotFound { session }) => {
            assert_eq!(session, compiled.session)
        }
        other => panic!("expected SessionNotFound, got {other:?}"),
    }
}

/// One tenant's scripted activity: which context to run and how many
/// batched cycles, with a seed expanding to the input words.
#[derive(Debug, Clone, Copy)]
struct Op {
    context: usize,
    cycles: usize,
    seed: u64,
}

fn words_for(op: Op, cycle: usize, n_inputs: usize) -> Vec<u64> {
    (0..n_inputs)
        .map(|i| {
            let x = op
                .seed
                .wrapping_add((cycle as u64) << 32)
                .wrapping_add(i as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15);
            x ^ (x >> 29)
        })
        .collect()
}

/// Replay one tenant's ops on a private, server-free device — the ground
/// truth a session must match no matter how the other tenant interleaves.
fn reference_outputs(circuits: &[Netlist], ops: &[Op]) -> Vec<Vec<Vec<u64>>> {
    let mut device = MultiDevice::compile_opts(&arch(), circuits, &serial(), &Recorder::disabled())
        .expect("reference compile");
    ops.iter()
        .map(|op| {
            device.try_switch_context(op.context).expect("context");
            (0..op.cycles)
                .map(|cycle| {
                    let n_in = device.kernel(op.context).expect("context").n_inputs();
                    device
                        .try_step_batch(&words_for(*op, cycle, n_in))
                        .expect("reference step")
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Two tenants run *stateful* circuits (a counter and an LFSR, so any
    /// register leakage changes outputs) through one server concurrently,
    /// under a proptest-chosen interleaving of contexts and cycle counts.
    /// Each tenant's outputs must equal a private replay of its own script.
    #[test]
    fn concurrent_sessions_never_cross_contaminate(
        raw_ops in proptest::collection::vec(
            (0usize..2, 0usize..2, 1usize..4, 0u64..u64::MAX),
            2..10,
        )
    ) {
        let circuits = vec![library::counter(4), library::lfsr(8, 0x8e)];
        let ops: Vec<(usize, Op)> = raw_ops
            .into_iter()
            .map(|(tenant, context, cycles, seed)| {
                (tenant, Op { context, cycles, seed })
            })
            .collect();
        let per_tenant: Vec<Vec<Op>> = (0..2)
            .map(|t| ops.iter().filter(|(o, _)| *o == t).map(|(_, op)| *op).collect())
            .collect();

        let server = Server::new(ServeConfig::default().with_workers(2));
        let sessions: Vec<_> = (0..2)
            .map(|_| {
                server
                    .submit_compile(
                        CompileJob::new(arch(), circuits.clone()).with_options(serial()),
                    )
                    .expect("accepted")
                    .wait()
                    .expect("compiles")
            })
            .collect();

        // Both tenants drive the server at the same time; within a tenant,
        // jobs are sequential (wait before next submit) so its own order is
        // defined while the cross-tenant interleaving is scheduler-chosen.
        let served: Vec<Vec<Vec<Vec<u64>>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = per_tenant
                .iter()
                .zip(&sessions)
                .map(|(tenant_ops, compiled)| {
                    let server = &server;
                    scope.spawn(move || {
                        tenant_ops
                            .iter()
                            .map(|op| {
                                let n_in = compiled.design.kernel(op.context).n_inputs();
                                let words = (0..op.cycles)
                                    .map(|cycle| words_for(*op, cycle, n_in))
                                    .collect();
                                server
                                    .submit_sim(SimJob::new(compiled.session, op.context, words))
                                    .expect("accepted")
                                    .wait()
                                    .expect("sim job")
                                    .outputs
                            })
                            .collect()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("tenant thread")).collect()
        });

        for (tenant, outputs) in served.iter().enumerate() {
            let reference = reference_outputs(&circuits, &per_tenant[tenant]);
            prop_assert_eq!(
                outputs,
                &reference,
                "tenant {}'s outputs diverged from its private replay",
                tenant
            );
        }
    }
}
