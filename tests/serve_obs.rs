//! Integration tests of the serving observability surface: per-tenant
//! accounting conservation under concurrent load, typed admission sheds
//! with trace attribution, live health snapshots, and request-scoped
//! correlation through the compile pipeline.

use std::sync::Arc;
use std::time::Duration;

use mcfpga_arch::ArchSpec;
use mcfpga_netlist::{library, Netlist};
use mcfpga_obs::{job_trace, Recorder};
use mcfpga_serve::{
    CompileJob, ServeConfig, ServeError, Server, SessionId, ShedReason, SimJob, SubmitError,
    WatermarkAdmission, DEFAULT_TENANT,
};
use mcfpga_sim::CompileOptions;

fn arch() -> ArchSpec {
    ArchSpec::paper_default()
}

/// Serial compile inside jobs: the serve worker pool is the parallelism.
fn serial() -> CompileOptions {
    CompileOptions::default().with_parallel(false)
}

fn cheap_circuits() -> Vec<Netlist> {
    vec![library::adder(2)]
}

/// What one tenant's client thread observed — the ground truth its
/// server-side ledger must match exactly.
#[derive(Debug, Default, PartialEq, Eq)]
struct ClientTally {
    submitted: u64,
    completed: u64,
    failed: u64,
    expired: u64,
    rejected: u64,
}

#[test]
fn tenant_ledgers_exactly_match_client_observed_outcomes_under_concurrency() {
    let rec = Recorder::enabled();
    let server = Server::with_recorder(
        ServeConfig::default()
            .with_workers(2)
            .with_queue_capacity(256),
        &rec,
    );
    let tenants = ["alpha", "beta", "gamma", "delta"];
    // One session per tenant, submitted up front (these compile jobs are
    // part of each tenant's ledger too).
    let sessions: Vec<SessionId> = tenants
        .iter()
        .map(|t| {
            server
                .submit_compile(
                    CompileJob::new(arch(), cheap_circuits())
                        .with_options(serial())
                        .with_tenant(*t),
                )
                .expect("accepted")
                .wait()
                .expect("compiles")
                .session
        })
        .collect();

    // A session that no longer exists: open one more and close it. The
    // setup tenant's ledger is not asserted on below.
    let closed = server
        .submit_compile(
            CompileJob::new(arch(), cheap_circuits())
                .with_options(serial())
                .with_tenant("setup"),
        )
        .expect("accepted")
        .wait()
        .expect("compiles")
        .session;
    assert!(server.close_session(closed));

    let n_in = 5; // adder(2): 2 + 2 inputs + carry
    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = tenants
            .iter()
            .enumerate()
            .map(|(ix, tenant)| {
                let server = &server;
                let session = sessions[ix];
                scope.spawn(move || {
                    // The compile above was this tenant's first attempt.
                    let mut tally = ClientTally {
                        submitted: 1,
                        completed: 1,
                        ..ClientTally::default()
                    };
                    for round in 0..30usize {
                        let job = match round % 3 {
                            // Valid sim job: completes.
                            0 => SimJob::new(session, 0, vec![vec![round as u64; n_in]; 8]),
                            // Closed session: serviced to a typed failure.
                            1 => SimJob::new(closed, 0, vec![vec![0; n_in]]),
                            // Zero deadline: expires in queue, never runs.
                            _ => SimJob::new(session, 0, vec![vec![1; n_in]])
                                .with_deadline(Duration::ZERO),
                        };
                        tally.submitted += 1;
                        match server.submit_sim(job.with_tenant(*tenant)) {
                            Ok(handle) => match handle.wait() {
                                Ok(_) => tally.completed += 1,
                                Err(ServeError::Deadline { .. }) => tally.expired += 1,
                                Err(_) => tally.failed += 1,
                            },
                            Err(_) => tally.rejected += 1,
                        }
                    }
                    tally
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (ix, tenant) in tenants.iter().enumerate() {
        let stats = server.tenant_stats(tenant).expect("tenant ledger exists");
        let tally = &tallies[ix];
        assert!(stats.is_conserved(), "{tenant}: {stats:?}");
        assert_eq!(stats.inflight, 0, "{tenant}: drained server");
        assert_eq!(stats.submitted, tally.submitted, "{tenant}");
        assert_eq!(stats.completed, tally.completed, "{tenant}");
        assert_eq!(stats.failed, tally.failed, "{tenant}");
        assert_eq!(stats.expired, tally.expired, "{tenant}");
        assert_eq!(stats.rejected, tally.rejected, "{tenant}");
        assert_eq!(stats.shed, 0, "{tenant}: default policy never sheds");
        assert_eq!(stats.compile_jobs, 1, "{tenant}");
        assert_eq!(stats.sim_jobs, stats.submitted - 1, "{tenant}");
    }
    // The global report is the sum of the per-tenant ledgers.
    let report = server.report();
    let sum = |f: fn(&mcfpga_serve::TenantStats) -> u64| -> u64 {
        report.tenants.iter().map(|t| f(&t.stats)).sum()
    };
    assert_eq!(report.jobs_completed, sum(|s| s.completed));
    assert_eq!(report.jobs_failed, sum(|s| s.failed));
    assert_eq!(report.jobs_expired, sum(|s| s.expired));
    assert_eq!(report.jobs_shed, sum(|s| s.shed));
}

#[test]
fn inflight_cap_shed_is_typed_counted_and_trace_attributed() {
    let rec = Recorder::enabled();
    let server = Server::with_recorder(
        ServeConfig::default()
            .with_workers(1)
            .with_queue_capacity(64)
            // Cap 0: every submission is over its tenant's in-flight cap
            // the moment it arrives — a deterministic shed.
            .with_admission(Arc::new(
                WatermarkAdmission::default().with_tenant_inflight_cap(0),
            )),
        &rec,
    );
    let err = server
        .submit_compile(
            CompileJob::new(arch(), cheap_circuits())
                .with_options(serial())
                .with_tenant("capped"),
        )
        .expect_err("cap 0 sheds everything");
    match &err {
        SubmitError::Shed {
            reason:
                ShedReason::TenantInflight {
                    inflight: 0,
                    cap: 0,
                },
        } => {}
        other => panic!("expected typed inflight shed, got {other:?}"),
    }

    // Counted: globally, per reason, and on the tenant's ledger.
    let report = server.report();
    assert_eq!(report.jobs_shed, 1);
    assert_eq!(report.shed_tenant_inflight, 1);
    assert_eq!(report.shed_queue_watermark, 0);
    let stats = server.tenant_stats("capped").expect("ledger exists");
    assert_eq!(stats.submitted, 1);
    assert_eq!(stats.shed, 1);
    assert!(stats.is_conserved());

    // Trace-attributed: the shed left a correlated `job_shed` event naming
    // the tenant and reason.
    let events = rec.trace_events();
    let shed = events
        .iter()
        .find(|e| e.name == "job_shed")
        .expect("shed traced");
    assert_eq!(shed.tenant.as_deref(), Some("capped"));
    let job = shed.job.expect("shed event carries the job id");
    let trace = job_trace(&events, job).expect("reconstructable");
    let traced_shed = trace.instant("job_shed").expect("shed in the job trace");
    assert_eq!(
        traced_shed.arg_str("reason"),
        Some("tenant_inflight"),
        "typed reason rides on the event"
    );
}

#[test]
fn queue_watermark_shed_fires_before_hard_capacity() {
    let server = Server::new(
        ServeConfig::default()
            .with_workers(1)
            .with_queue_capacity(64)
            // Watermark 0 sheds on depth 0 — before capacity could matter.
            .with_admission(Arc::new(
                WatermarkAdmission::default().with_queue_watermark(0),
            )),
    );
    let err = server
        .submit_compile(CompileJob::new(arch(), cheap_circuits()).with_options(serial()))
        .expect_err("watermark 0 sheds everything");
    match err {
        SubmitError::Shed {
            reason:
                ShedReason::QueueWatermark {
                    depth: 0,
                    watermark: 0,
                },
        } => {}
        other => panic!("expected watermark shed, got {other:?}"),
    }
    // Unlabeled jobs are charged to the default tenant.
    let stats = server
        .tenant_stats(DEFAULT_TENANT)
        .expect("default-tenant ledger");
    assert_eq!(stats.shed, 1);
    assert!(stats.is_conserved());
}

#[test]
fn snapshot_reports_drained_server_health() {
    let rec = Recorder::enabled();
    let server = Server::with_recorder(
        ServeConfig::default()
            .with_workers(2)
            .with_queue_capacity(16),
        &rec,
    );
    let outcome = server
        .submit_compile(
            CompileJob::new(arch(), cheap_circuits())
                .with_options(serial())
                .with_tenant("snap"),
        )
        .expect("accepted")
        .wait()
        .expect("compiles");
    for _ in 0..4 {
        server
            .submit_sim(SimJob::new(outcome.session, 0, vec![vec![3; 5]; 4]).with_tenant("snap"))
            .expect("accepted")
            .wait()
            .expect("completes");
    }
    let snap = server.snapshot();
    assert_eq!(snap.queue_depth, 0, "drained");
    assert_eq!(snap.queue_capacity, 16);
    assert!(snap.queue_depth_hwm >= 1, "jobs were queued at some point");
    assert_eq!(snap.inflight, 0);
    assert_eq!(snap.workers, 2);
    assert!(snap.busy_workers <= snap.workers);
    assert!((0.0..=1.0).contains(&snap.worker_utilization));
    assert_eq!(snap.sessions, server.n_sessions());
    assert_eq!(snap.cached_designs, server.cached_designs());
    assert!(snap.rolling_wait_p99_us >= 0.0);
    assert!(snap.rolling_service_p99_us > 0.0, "jobs were serviced");
    assert_eq!(snap.jobs_shed, 0);
    assert_eq!(snap.trace_dropped, 0);
    let snap_tenant = snap
        .tenant_inflight
        .iter()
        .find(|t| t.tenant == "snap")
        .expect("tenant gauge present");
    assert_eq!(snap_tenant.inflight, 0);
    // The snapshot agrees with the report's authoritative watermark, and
    // the recorder's queue-depth gauge was derived from the same counter.
    let report = server.report();
    assert_eq!(report.queue_depth_hwm, snap.queue_depth_hwm as u64);
    assert_eq!(rec.gauge("serve.queue_depth"), Some(0.0));
    assert_eq!(
        rec.gauge("serve.queue_depth_hwm"),
        Some(snap.queue_depth_hwm as f64)
    );
    assert_eq!(report.trace_dropped, 0);
}

#[test]
fn compile_job_trace_includes_per_context_compile_children() {
    let rec = Recorder::enabled();
    let server = Server::with_recorder(ServeConfig::default().with_workers(1), &rec);
    let circuits = vec![library::adder(2), library::parity(3)];
    let handle = server
        .submit_compile(
            CompileJob::new(arch(), circuits)
                .with_options(serial())
                .with_tenant("tracer"),
        )
        .expect("accepted");
    let job = handle.job().raw();
    let outcome = handle.wait().expect("compiles");
    assert_eq!(outcome.job.raw(), job, "outcome echoes the handle's id");
    assert!(!outcome.cache_hit);

    let events = rec.trace_events();
    let trace = job_trace(&events, job).expect("job left correlated events");
    assert_eq!(trace.tenant.as_deref(), Some("tracer"));
    // The full request path: submit-side instant, dequeue, the compile_job
    // span, its cache lookup, and the per-context compile spans the job
    // caused inside the pipeline.
    assert!(trace.instant("job_submitted").is_some());
    assert!(trace.instant("job_dequeued").is_some());
    let root = trace.span("compile_job").expect("compile span");
    assert!(root.duration_us().is_some(), "span closed");
    assert!(trace.instant("cache_lookup").is_some());
    let contexts = ["compile_context"]
        .iter()
        .map(|n| {
            fn count(s: &mcfpga_obs::JobSpan, name: &str) -> usize {
                (s.name == name) as usize + s.children.iter().map(|c| count(c, name)).sum::<usize>()
            }
            count(root, n)
        })
        .sum::<usize>();
    assert_eq!(contexts, 2, "one compile_context span per circuit");

    // A second, uncorrelated activity does not leak into this job's trace.
    let job_events = events.iter().filter(|e| e.job == Some(job)).count();
    assert_eq!(trace.n_events, job_events);
}
