//! Integration tests of session portability and the sharded front-end:
//! checkpoint/restore bit-identity (including restore-with-recompile onto a
//! cacheless server), snapshot serde round-trips under adversarial register
//! state, submit-time malformed-job validation, the unified request door
//! with handle combinators, live migration, and shard kill/recovery.

use std::sync::Arc;
use std::time::Duration;

use mcfpga_arch::ArchSpec;
use mcfpga_netlist::{library, Netlist};
use mcfpga_obs::Recorder;
use mcfpga_serve::{
    CheckpointJob, CompileJob, CompiledDesign, MalformedReason, RestoreJob, ServeConfig, Server,
    SessionId, ShardError, ShardRouter, SimJob, SubmitError, SNAPSHOT_VERSION,
};
use mcfpga_sim::{CompileOptions, MultiDevice};
use proptest::prelude::*;

fn arch() -> ArchSpec {
    ArchSpec::paper_default()
}

fn serial() -> CompileOptions {
    CompileOptions::default().with_parallel(false)
}

/// Stateful circuits: any register-state loss or leak across a checkpoint
/// changes outputs, so bit-identity below proves exact state transfer.
fn stateful_circuits() -> Vec<Netlist> {
    vec![library::counter(4), library::lfsr(8, 0x8e)]
}

/// One scripted sim batch: which context, how many cycles, seed for words.
#[derive(Debug, Clone, Copy)]
struct Op {
    context: usize,
    cycles: usize,
    seed: u64,
}

fn words_for(op: Op, cycle: usize, n_inputs: usize) -> Vec<u64> {
    (0..n_inputs)
        .map(|i| {
            let x = op
                .seed
                .wrapping_add((cycle as u64) << 32)
                .wrapping_add(i as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15);
            x ^ (x >> 29)
        })
        .collect()
}

fn run_op(
    server: &Server,
    session: SessionId,
    design: &Arc<CompiledDesign>,
    op: Op,
) -> Vec<Vec<u64>> {
    let n_in = design.kernel(op.context).n_inputs();
    let words = (0..op.cycles)
        .map(|cycle| words_for(op, cycle, n_in))
        .collect();
    server
        .submit_sim(SimJob::new(session, op.context, words))
        .expect("sim accepted")
        .wait()
        .expect("sim completes")
        .outputs
}

/// Server-free ground truth: replay the ops on a private device.
fn reference_outputs(circuits: &[Netlist], ops: &[Op]) -> Vec<Vec<Vec<u64>>> {
    let mut device = MultiDevice::compile_opts(&arch(), circuits, &serial(), &Recorder::disabled())
        .expect("reference compile");
    ops.iter()
        .map(|op| {
            device.try_switch_context(op.context).expect("context");
            (0..op.cycles)
                .map(|cycle| {
                    let n_in = device.kernel(op.context).expect("context").n_inputs();
                    device
                        .try_step_batch(&words_for(*op, cycle, n_in))
                        .expect("reference step")
                })
                .collect()
        })
        .collect()
}

fn to_ops(raw: Vec<(usize, usize, u64)>) -> Vec<Op> {
    raw.into_iter()
        .map(|(context, cycles, seed)| Op {
            context,
            cycles,
            seed,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The tentpole invariant: checkpoint → restore → step produces exactly
    /// the output of the uninterrupted run, on all 64·W lanes, wherever the
    /// snapshot is cut and whichever contexts the workload hops between —
    /// both restoring on the same server (cache hit) and onto a fresh
    /// server that has never compiled the design (cold recompile).
    #[test]
    fn checkpoint_restore_resumes_bit_identically(
        raw_ops in proptest::collection::vec((0usize..2, 1usize..4, 0u64..u64::MAX), 2..8),
        cut_frac in 0usize..100,
    ) {
        let ops = to_ops(raw_ops);
        let circuits = stateful_circuits();
        let cut = ops.len() * cut_frac / 100;
        let reference = reference_outputs(&circuits, &ops);

        // Uninterrupted serving run.
        let uncut = Server::new(ServeConfig::default().with_workers(1));
        let c = uncut
            .submit_compile(CompileJob::new(arch(), circuits.clone()).with_options(serial()))
            .expect("accepted").wait().expect("compiles");
        let mut uninterrupted = Vec::new();
        for &op in &ops {
            uninterrupted.push(run_op(&uncut, c.session, &c.design, op));
        }
        prop_assert_eq!(&uninterrupted, &reference, "serving run matches device replay");

        // Interrupted run: snapshot mid-workload, resume twice.
        let a = Server::new(ServeConfig::default().with_workers(1));
        let ca = a
            .submit_compile(CompileJob::new(arch(), circuits.clone()).with_options(serial()))
            .expect("accepted").wait().expect("compiles");
        let mut before = Vec::new();
        for &op in &ops[..cut] {
            before.push(run_op(&a, ca.session, &ca.design, op));
        }
        let snapshot = a.checkpoint_session(ca.session).expect("checkpoint");
        prop_assert_eq!(snapshot.source_session, ca.session.raw());

        // Resume on the same server: the design cache hits.
        let warm = a.restore_session(snapshot.clone()).expect("warm restore");
        prop_assert!(!warm.recompiled, "same server must hit its own cache");
        prop_assert!(!warm.refingerprinted);
        // Resume on a server that never saw the design: cold recompile.
        let b = Server::new(ServeConfig::default().with_workers(1));
        let cold = b.restore_session(snapshot).expect("cold restore");
        prop_assert!(cold.recompiled, "fresh server must recompile");

        let mut warm_after = before.clone();
        let mut cold_after = before;
        for &op in &ops[cut..] {
            warm_after.push(run_op(&a, warm.session, &warm.design, op));
            cold_after.push(run_op(&b, cold.session, &cold.design, op));
        }
        prop_assert_eq!(&warm_after, &uninterrupted, "warm restore diverged");
        prop_assert_eq!(&cold_after, &uninterrupted, "cold restore diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Snapshot serde round-trip under adversarial register state: inject
    /// arbitrary 64-lane words (shape-valid, content-arbitrary), serialize,
    /// deserialize, and prove the wire copy restores to the same machine —
    /// JSON-identical re-serialization plus behavioral bit-identity.
    #[test]
    fn snapshot_serde_round_trip_is_exact(
        raw_warmup in proptest::collection::vec((0usize..2, 1usize..4, 0u64..u64::MAX), 2..5),
        lane_words in proptest::collection::vec(any::<u64>(), 8..32),
        probe_seed in any::<u64>(),
    ) {
        let warmup = to_ops(raw_warmup);
        let circuits = stateful_circuits();
        let server = Server::new(ServeConfig::default().with_workers(1));
        let c = server
            .submit_compile(CompileJob::new(arch(), circuits).with_options(serial()))
            .expect("accepted").wait().expect("compiles");
        for &op in &warmup {
            run_op(&server, c.session, &c.design, op);
        }
        let mut snapshot = server.checkpoint_session(c.session).expect("checkpoint");
        // Overwrite the register lanes with adversarial words (all-ones,
        // alternating, arbitrary): the snapshot must carry them verbatim.
        let mut feed = lane_words.iter().cycle();
        for regs in &mut snapshot.regs {
            for w in regs.iter_mut() {
                *w = *feed.next().unwrap();
            }
        }

        let json = serde_json::to_string(&snapshot).expect("serialize");
        let wire: mcfpga_serve::SessionSnapshot =
            serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(
            serde_json::to_string(&wire).expect("re-serialize"),
            json.clone(),
            "round trip must be byte-stable"
        );
        prop_assert!(snapshot.serialized_bytes() == json.len());

        // Behavioral identity: the original and the wire copy restore to
        // machines that step identically from the injected state.
        let s1 = Server::new(ServeConfig::default().with_workers(1));
        let s2 = Server::new(ServeConfig::default().with_workers(1));
        let r1 = s1.restore_session(snapshot).expect("restore original");
        let r2 = s2.restore_session(wire).expect("restore wire copy");
        for context in 0..2 {
            let op = Op { context, cycles: 3, seed: probe_seed };
            prop_assert_eq!(
                run_op(&s1, r1.session, &r1.design, op),
                run_op(&s2, r2.session, &r2.design, op),
                "wire copy diverged on context {}", context
            );
        }
    }
}

/// Regression: restore onto a server with `cache_capacity: 0` (caching
/// disabled entirely) must recompile and still resume bit-identically —
/// the restore path cannot depend on the cache retaining anything.
#[test]
fn restore_onto_cacheless_server_recompiles_bit_identically() {
    let circuits = stateful_circuits();
    let ops: Vec<Op> = (0..4)
        .map(|i| Op {
            context: i % 2,
            cycles: 2,
            seed: 0xfeed_0000 + i as u64,
        })
        .collect();
    let reference = reference_outputs(&circuits, &ops);

    let a = Server::new(ServeConfig::default().with_workers(1));
    let c = a
        .submit_compile(CompileJob::new(arch(), circuits).with_options(serial()))
        .expect("accepted")
        .wait()
        .expect("compiles");
    let mut outputs = Vec::new();
    for &op in &ops[..2] {
        outputs.push(run_op(&a, c.session, &c.design, op));
    }
    let snapshot = a.checkpoint_session(c.session).expect("checkpoint");

    let b = Server::new(
        ServeConfig::default()
            .with_workers(1)
            .with_cache_capacity(0),
    );
    let restored = b.restore_session(snapshot).expect("restore");
    assert!(restored.recompiled, "cacheless server must recompile");
    assert_eq!(b.cached_designs(), 0, "capacity 0 retains nothing");
    for &op in &ops[2..] {
        outputs.push(run_op(&b, restored.session, &restored.design, op));
    }
    assert_eq!(outputs, reference, "cacheless restore diverged");
}

/// Satellite fix: structurally invalid submissions are refused at the door
/// with `SubmitError::Malformed` — typed, counted, and conserved in the
/// tenant ledger — instead of burning a worker.
#[test]
fn malformed_submissions_are_refused_at_submit_time() {
    let server =
        Server::with_recorder(ServeConfig::default().with_workers(1), &Recorder::enabled());
    let c = server
        .submit_compile(
            CompileJob::new(arch(), stateful_circuits())
                .with_options(serial())
                .with_tenant("acme"),
        )
        .expect("accepted")
        .wait()
        .expect("compiles");
    let n_in = c.design.kernel(0).n_inputs();

    // Wrong input arity, caught naming the offending cycle.
    let bad_arity = server.submit(
        SimJob::new(c.session, 0, vec![vec![0; n_in], vec![0; n_in + 1]]).with_tenant("acme"),
    );
    match bad_arity {
        Err(SubmitError::Malformed {
            reason:
                MalformedReason::InputArity {
                    cycle,
                    expected,
                    got,
                },
        }) => {
            assert_eq!(cycle, 1);
            assert_eq!(expected, n_in);
            assert_eq!(got, n_in + 1);
        }
        other => panic!("expected InputArity, got {other:?}"),
    }

    // Context the design does not program.
    let bad_ctx = server.submit(SimJob::new(c.session, 9, vec![vec![0; n_in]]).with_tenant("acme"));
    match bad_ctx {
        Err(SubmitError::Malformed {
            reason:
                MalformedReason::ContextOutOfRange {
                    context: 9,
                    programmed: 2,
                },
        }) => {}
        other => panic!("expected ContextOutOfRange, got {other:?}"),
    }

    // Snapshot from the future.
    let mut snapshot = server.checkpoint_session(c.session).expect("checkpoint");
    let good = snapshot.clone();
    snapshot.version = SNAPSHOT_VERSION + 1;
    match server.submit(RestoreJob::new(snapshot).with_tenant("acme")) {
        Err(SubmitError::Malformed {
            reason: MalformedReason::SnapshotVersion { got, .. },
        }) => assert_eq!(got, SNAPSHOT_VERSION + 1),
        other => panic!("expected SnapshotVersion, got {other:?}"),
    }

    // Snapshot whose register state disagrees with its own request.
    let mut torn = good;
    torn.regs.pop();
    match server.submit(RestoreJob::new(torn).with_tenant("acme")) {
        Err(SubmitError::Malformed {
            reason: MalformedReason::SnapshotShape { .. },
        }) => {}
        other => panic!("expected SnapshotShape, got {other:?}"),
    }

    // Every refusal is charged to the tenant's rejected bucket and the
    // ledger still conserves every attempt.
    let stats = server.tenant_stats("acme").expect("tenant exists");
    assert_eq!(stats.rejected, 4);
    assert!(stats.is_conserved(), "ledger conservation: {stats:?}");
    assert_eq!(server.report().jobs_malformed, 4);
}

/// The unified door and the handle combinators: `submit` takes any request
/// kind, `wait_timeout` bounds the wait without consuming the handle, and
/// `map` post-processes outcomes. Checkpoint/restore also flow through the
/// queue as first-class jobs with tenant accounting.
#[test]
fn unified_submit_wait_timeout_and_map() {
    let server =
        Server::with_recorder(ServeConfig::default().with_workers(1), &Recorder::enabled());

    // Occupy the single worker so the probe job measurably queues.
    let heavy = server
        .submit(
            CompileJob::new(
                arch(),
                vec![
                    library::adder(4),
                    library::multiplier(3),
                    library::alu(4),
                    library::popcount(6),
                ],
            )
            .with_options(serial()),
        )
        .expect("accepted");
    let probe = server
        .submit(CompileJob::new(arch(), stateful_circuits()).with_options(serial()))
        .expect("accepted");
    // Still queued behind the heavy compile: a zero-budget wait times out,
    // and the handle stays usable afterwards.
    assert!(
        probe.wait_timeout(Duration::ZERO).is_none(),
        "probe cannot have completed behind a busy worker in zero time"
    );
    let heavy_out = heavy.wait().expect("heavy completes");
    assert!(heavy_out.clone().into_compile().is_some());
    assert!(heavy_out.into_sim().is_none());
    let compiled = probe
        .wait_timeout(Duration::from_secs(60))
        .expect("probe completes within a minute")
        .expect("probe compiles")
        .into_compile()
        .expect("compile outcome");

    // map: a handle typed to exactly what the caller wants.
    let n_in = compiled.design.kernel(0).n_inputs();
    let outputs = server
        .submit(SimJob::new(compiled.session, 0, vec![vec![!0u64; n_in]]))
        .expect("accepted")
        .map(|o| o.into_sim().expect("sim outcome").outputs)
        .wait()
        .expect("sim completes");
    assert_eq!(outputs.len(), 1);

    // Checkpoint and restore as queued jobs, with tenant accounting.
    let snap = server
        .submit_checkpoint(CheckpointJob::new(compiled.session).with_tenant("ctrl"))
        .expect("accepted")
        .wait()
        .expect("checkpoint completes");
    assert_eq!(snap.session, compiled.session);
    let restored = server
        .submit_restore(RestoreJob::new(snap.snapshot))
        .expect("accepted")
        .wait()
        .expect("restore completes");
    assert_ne!(
        restored.session, compiled.session,
        "restore mints a fresh id"
    );
    let ctrl = server.tenant_stats("ctrl").expect("ctrl tenant");
    assert_eq!(ctrl.checkpoint_jobs, 1);
    assert!(ctrl.is_conserved());
    // The restore job defaulted to the snapshot's tenant ("default").
    let report = server.report();
    assert_eq!(report.checkpoints, 1);
    assert_eq!(report.restores, 1);
}

/// Live migration through the router: state moves, the old id dies, the
/// resumed session matches the device-replay ground truth.
#[test]
fn router_migrates_sessions_with_exact_state() {
    let circuits = stateful_circuits();
    let ops: Vec<Op> = (0..6)
        .map(|i| Op {
            context: i % 2,
            cycles: 2,
            seed: 0xabcd + i as u64,
        })
        .collect();
    let reference = reference_outputs(&circuits, &ops);

    let router = ShardRouter::new(2, ServeConfig::default().with_workers(1));
    let compiled = router
        .submit(CompileJob::new(arch(), circuits).with_options(serial()))
        .expect("routed")
        .wait()
        .expect("compiles")
        .into_compile()
        .expect("compile outcome");
    let mut outputs = Vec::new();
    let mut session = compiled.session;
    for (i, &op) in ops.iter().enumerate() {
        let n_in = compiled.design.kernel(op.context).n_inputs();
        let words = (0..op.cycles)
            .map(|cycle| words_for(op, cycle, n_in))
            .collect();
        outputs.push(
            router
                .submit(SimJob::new(session, op.context, words))
                .expect("routed")
                .wait()
                .expect("sim completes")
                .into_sim()
                .expect("sim outcome")
                .outputs,
        );
        // Bounce the session to the other shard between every batch.
        if i + 1 < ops.len() {
            let from = router.session_owner(session).expect("owned");
            let to = (from + 1) % router.n_shards();
            let m = router.migrate_session(session, to).expect("migrates");
            assert_eq!(m.from, from);
            assert_eq!(m.to, to);
            assert_eq!(router.session_owner(m.new_session), Some(to));
            session = m.new_session;
        }
    }
    assert_eq!(outputs, reference, "migrated session diverged");

    // The pre-migration id is dead everywhere.
    let n_in = compiled.design.kernel(0).n_inputs();
    match router.submit(SimJob::new(compiled.session, 0, vec![vec![0; n_in]])) {
        Err(ShardError::Submit(SubmitError::Malformed {
            reason: MalformedReason::UnknownSession { session: s },
        })) => assert_eq!(s, compiled.session),
        other => panic!("expected UnknownSession, got {other:?}"),
    }
}

/// Kill one of three shards mid-workload: every checkpointed session comes
/// back on a survivor and the resumed output is word-for-word the replay
/// ground truth — zero lost sessions.
#[test]
fn router_recovers_killed_shard_sessions_from_checkpoints() {
    // Distinct designs per tenant so placement spreads.
    let designs: Vec<Vec<Netlist>> = vec![
        vec![library::counter(4), library::lfsr(8, 0x8e)],
        vec![library::counter(6), library::lfsr(8, 0xb8)],
        vec![library::counter(5), library::lfsr(6, 0x2d)],
        vec![library::counter(3), library::lfsr(7, 0x53)],
    ];
    let ops: Vec<Op> = (0..6)
        .map(|i| Op {
            context: i % 2,
            cycles: 2,
            seed: 0x5eed_0000 + i as u64,
        })
        .collect();
    let cut = 3;

    let router = ShardRouter::new(3, ServeConfig::default().with_workers(1));
    let compiled: Vec<_> = designs
        .iter()
        .map(|circuits| {
            router
                .submit(CompileJob::new(arch(), circuits.clone()).with_options(serial()))
                .expect("routed")
                .wait()
                .expect("compiles")
                .into_compile()
                .expect("compile outcome")
        })
        .collect();
    assert_eq!(router.n_sessions(), designs.len());

    let mut outputs: Vec<Vec<Vec<Vec<u64>>>> = vec![Vec::new(); designs.len()];
    for (t, c) in compiled.iter().enumerate() {
        for &op in &ops[..cut] {
            let n_in = c.design.kernel(op.context).n_inputs();
            let words = (0..op.cycles)
                .map(|cycle| words_for(op, cycle, n_in))
                .collect();
            outputs[t].push(
                router
                    .submit(SimJob::new(c.session, op.context, words))
                    .expect("routed")
                    .wait()
                    .expect("sim completes")
                    .into_sim()
                    .expect("sim outcome")
                    .outputs,
            );
        }
    }

    // Checkpoint everything, then kill the shard holding the most sessions.
    let checkpointed = router.checkpoint_all();
    assert_eq!(checkpointed.len(), designs.len());
    let victim = (0..router.n_shards())
        .max_by_key(|&i| router.shard_snapshot(i).map_or(0, |snap| snap.sessions))
        .unwrap();
    let lost = router.kill_shard(victim).expect("kill");
    assert!(!lost.is_empty(), "victim shard held sessions");
    assert_eq!(router.n_sessions(), designs.len() - lost.len());

    let recovered = router.recover().expect("recover");
    assert_eq!(
        recovered.len(),
        lost.len(),
        "every killed session must come back"
    );
    assert_eq!(router.n_sessions(), designs.len(), "zero lost sessions");

    // Remap ids and finish the workload; outputs must match the replay.
    let mut live: Vec<SessionId> = compiled.iter().map(|c| c.session).collect();
    for (old, new) in &recovered {
        if let Some(slot) = live.iter_mut().find(|s| *s == old) {
            *slot = *new;
        }
    }
    for (t, c) in compiled.iter().enumerate() {
        for &op in &ops[cut..] {
            let n_in = c.design.kernel(op.context).n_inputs();
            let words = (0..op.cycles)
                .map(|cycle| words_for(op, cycle, n_in))
                .collect();
            outputs[t].push(
                router
                    .submit(SimJob::new(live[t], op.context, words))
                    .expect("routed")
                    .wait()
                    .expect("sim completes")
                    .into_sim()
                    .expect("sim outcome")
                    .outputs,
            );
        }
    }
    for (t, circuits) in designs.iter().enumerate() {
        let reference = reference_outputs(circuits, &ops);
        assert_eq!(
            outputs[t], reference,
            "tenant {t} diverged across the kill/recovery"
        );
    }

    // A revived shard rejoins placement; rebalance moves sessions home.
    assert!(router.revive_shard(victim));
    assert!(!router.revive_shard(victim), "already alive");
    let moves = router.rebalance().expect("rebalance");
    for m in &moves {
        assert_eq!(
            router.session_owner(m.new_session),
            Some(m.to),
            "rebalanced session must land on its home shard"
        );
    }
    assert_eq!(router.n_sessions(), designs.len());
}
