//! Offline stand-in for `criterion`.
//!
//! Implements the subset the workspace benches use: `Criterion::bench_function`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` / `criterion_main!`
//! macros. Instead of statistical sampling it runs a short fixed number of
//! timed iterations and prints mean wall-clock time per iteration, so
//! `cargo bench` still produces useful relative numbers offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How many timed iterations each benchmark runs (after one warm-up call).
const MEASURED_ITERS: u32 = 10;

#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        if b.iters > 0 {
            let per_iter = b.elapsed / b.iters;
            println!("bench {id:<40} {per_iter:>12.3?}/iter ({} iters)", b.iters);
        } else {
            println!("bench {id:<40} (no iterations run)");
        }
        self
    }
}

#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call outside the timed window.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..MEASURED_ITERS {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += MEASURED_ITERS;
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("sum_small", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_targets() {
        benches();
    }

    #[test]
    fn bencher_accumulates_iterations() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }
}
