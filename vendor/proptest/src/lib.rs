//! Offline stand-in for `proptest`.
//!
//! Supports the subset the workspace uses: the `proptest!` macro with an
//! optional `#![proptest_config(...)]` header, integer-range strategies
//! (`lo..hi`, `lo..=hi`), `any::<T>()` for `u32` / `usize` / `bool`, and
//! `prop_assert!` / `prop_assert_eq!`. Sampling is random (deterministic
//! per test name) rather than shrinking: a failing case panics with the
//! sampled arguments so it can be reproduced by hand.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Runner configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Upstream defaults to 256; keep CI fast while still sweeping.
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case (produced by `prop_assert*`).
#[derive(Debug)]
pub struct TestCaseError {
    pub message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Deterministic per-test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> TestRng {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A value generator. Unlike upstream there is no shrinking tree; `sample`
/// draws one value.
pub trait Strategy {
    type Value: fmt::Debug;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `any::<T>()` — the whole domain of `T`.
pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub trait Arbitrary: fmt::Debug + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are drawn
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Run one property: sample `cases` inputs, fail fast with the sampled
/// arguments on the first violated assertion.
pub fn run_property<F: FnMut(&mut TestRng, u32) -> Result<(), TestCaseError>>(
    name: &str,
    config: &ProptestConfig,
    mut case: F,
) {
    let mut rng = TestRng::from_name(name);
    for i in 0..config.cases {
        if let Err(e) = case(&mut rng, i) {
            panic!("property `{name}` failed at case {i}: {e}");
        }
    }
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (
        @funcs ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_property(stringify!($name), &config, |rng, _case| {
                    $(let $arg = $crate::Strategy::sample(&($strategy), rng);)*
                    // Render args before the body runs: the body may move them.
                    let args_desc =
                        [$(format!(concat!(stringify!($arg), "={:?}"), $arg)),*].join(", ");
                    let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    result.map_err(|e| $crate::TestCaseError::fail(format!(
                        "{} [args: {}]", e, args_desc
                    )))
                });
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@funcs (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l, r, format!($($fmt)*)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 2usize..=5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((2..=5).contains(&y));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn any_produces_values(mask in any::<u32>(), flag in any::<bool>()) {
            prop_assert!(mask.count_ones() <= 32);
            prop_assert!(usize::from(flag) <= 1);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_panic_with_args() {
        proptest! {
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("abc");
        let mut b = TestRng::from_name("abc");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
