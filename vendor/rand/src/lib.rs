//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so
//! the real `rand` cannot be fetched. This crate reimplements exactly the
//! subset the workspace uses — `StdRng::seed_from_u64`, `Rng::gen_range`
//! over integer ranges, and `Rng::gen_bool` — with a deterministic
//! xoshiro256** generator. Streams differ from upstream `rand`, which is
//! fine: every consumer in the workspace only relies on determinism in the
//! seed, not on a particular stream.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only the `seed_from_u64` entry point is used).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `gen_range` can sample from. Generic over the output type `T`
/// (as in upstream rand) so integer literals in `gen_range(0..4)` infer their
/// type from the call site.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + r) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli sample with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 uniform mantissa bits, the usual open [0, 1) construction.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded through SplitMix64 — deterministic, fast, and
    /// statistically solid for simulation workloads.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// The workspace enables `small_rng` but never constructs one directly;
    /// alias it to the same generator.
    pub type SmallRng = StdRng;

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(2usize..=32);
            assert!((2..=32).contains(&w));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..1 << 60) == b.gen_range(0u64..1 << 60))
            .count();
        assert!(same < 4);
    }
}
