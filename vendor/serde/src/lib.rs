//! Offline stand-in for `serde` (+ re-exported derive macros).
//!
//! The build environment cannot reach a cargo registry, so the real serde
//! is unavailable. This crate keeps the workspace's observable API —
//! `Serialize` / `Deserialize` derives, the `Serializer` / `Deserializer`
//! traits used by `#[serde(with = "...")]` modules, and faithful JSON
//! round-trips through `serde_json` — on a deliberately simplified data
//! model: everything serializes through one owned [`Value`] tree instead
//! of serde's streaming visitor machinery.
//!
//! Differences from upstream that consumers must not rely on (none in this
//! workspace do): maps serialize as arrays of `[key, value]` pairs, tuple
//! structs always serialize as arrays, and `Serialize` has a required
//! `to_value` method that the derive implements.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// The self-describing data model everything serializes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Unsigned integers (the full `u64` range — LUT tables need it).
    U64(u64),
    /// Negative integers.
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered object (fields keep declaration order).
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric view: integers widen to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Deserialization failure: a message plus nothing else.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    pub fn new(msg: impl Into<String>) -> DeError {
        DeError { msg: msg.into() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

pub mod de {
    /// The error-construction hook `Deserializer::Error` types provide.
    pub trait Error: Sized {
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    impl Error for super::DeError {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            super::DeError::new(msg.to_string())
        }
    }
}

/// A sink `Serialize::serialize` drives. In this simplified model the
/// serializer consumes one finished [`Value`].
pub trait Serializer: Sized {
    type Ok;
    type Error;
    fn serialize_value(self, v: Value) -> Result<Self::Ok, Self::Error>;
}

/// A source `Deserialize::deserialize` drains: one finished [`Value`].
pub trait Deserializer<'de>: Sized {
    type Error: de::Error;
    fn take_value(self) -> Result<Value, Self::Error>;
}

pub trait Serialize {
    /// Convert to the data model (what the derive implements).
    fn to_value(&self) -> Value;

    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.to_value())
    }
}

pub trait Deserialize<'de>: Sized {
    /// Rebuild from the data model (what the derive implements).
    fn from_value(v: &Value) -> Result<Self, DeError>;

    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = deserializer.take_value()?;
        Self::from_value(&v).map_err(<D::Error as de::Error>::custom)
    }
}

/// Value-level serializer / deserializer, used by derived code to drive
/// `#[serde(with = "...")]` modules and by `serde_json`.
pub mod value {
    use super::{de, DeError, Deserializer, Serializer, Value};

    /// Uninhabited serializer error: building a `Value` cannot fail.
    pub enum Impossible {}

    impl de::Error for Impossible {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            unreachable!("value serialization is infallible: {msg}")
        }
    }

    /// Serializer whose output is the `Value` itself.
    pub struct ValueSerializer;

    impl Serializer for ValueSerializer {
        type Ok = Value;
        type Error = Impossible;
        fn serialize_value(self, v: Value) -> Result<Value, Impossible> {
            Ok(v)
        }
    }

    /// Deserializer fed from an owned `Value`.
    pub struct ValueDeserializer(Value);

    impl ValueDeserializer {
        pub fn new(v: Value) -> ValueDeserializer {
            ValueDeserializer(v)
        }
    }

    impl<'de> Deserializer<'de> for ValueDeserializer {
        type Error = DeError;
        fn take_value(self) -> Result<Value, DeError> {
            Ok(self.0)
        }
    }

    /// Look up a required object field (derived `from_value` uses this).
    pub fn field<'a>(fields: &'a [(String, Value)], name: &str) -> Result<&'a Value, DeError> {
        fields
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| DeError::new(format!("missing field `{name}`")))
    }

    /// Run a `Serialize` through the value serializer.
    pub fn to_value<T: super::Serialize + ?Sized>(v: &T) -> Value {
        v.to_value()
    }
}

// ---- primitive impls -------------------------------------------------------

macro_rules! unsigned_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(format!("{n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(DeError::new(format!(
                        "expected {} got {other:?}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

macro_rules! signed_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 { Value::U64(*self as u64) } else { Value::I64(*self as i64) }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(format!("{n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(DeError::new(format!(
                        "expected {} got {other:?}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

unsigned_impls!(u8, u16, u32, u64, usize);
signed_impls!(i8, i16, i32, i64, isize);

/// `Value` serializes as itself, so hand-built value trees (e.g. the
/// Chrome-trace exporter's `args` objects, which must be real JSON objects
/// rather than the map-as-pairs encoding) can be printed by `serde_json`.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool got {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(DeError::new(format!("expected f64 got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string got {other:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new(format!("expected array got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array()
                    .ok_or_else(|| DeError::new(format!("expected tuple array got {v:?}")))?;
                let expected = [$( stringify!($n) ),+].len();
                if items.len() != expected {
                    return Err(DeError::new(format!(
                        "expected {expected}-tuple got {} items", items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Maps serialize as arrays of `[key, value]` pairs so non-string keys
/// (coordinates, edge/track tuples) round-trip without a `with` module.
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new(format!("expected map-entry array got {v:?}")))?
            .iter()
            .map(|entry| {
                let pair = entry
                    .as_array()
                    .filter(|a| a.len() == 2)
                    .ok_or_else(|| DeError::new("map entry must be a [key, value] pair"))?;
                Ok((K::from_value(&pair[0])?, V::from_value(&pair[1])?))
            })
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de> + std::fmt::Debug, const N: usize> Deserialize<'de> for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|items| DeError::new(format!("expected {N} items got {}", items.len())))
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
