//! `#[derive(Serialize, Deserialize)]` for the vendored serde stub.
//!
//! Implemented directly on `proc_macro` token trees — `syn`/`quote` are
//! unavailable offline. Supports exactly what the workspace uses: plain
//! (non-generic) structs with named, tuple, or unit bodies; enums with
//! unit, tuple, and struct variants; and the `#[serde(with = "module")]`
//! field attribute. Anything else fails loudly with a `compile_error!`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    /// `None` for tuple fields.
    name: Option<String>,
    /// `#[serde(with = "module")]` path, if present.
    with: Option<String>,
}

#[derive(Debug)]
enum Body {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    body: VariantBody,
}

#[derive(Debug)]
enum VariantBody {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Item {
    name: String,
    body: Body,
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().unwrap(),
        Err(msg) => error(&msg),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().unwrap(),
        Err(msg) => error(&msg),
    }
}

// ---- parsing ---------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i)?;
    let kind = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    i += 1;
    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "the vendored serde derive does not support generic type `{name}`"
        ));
    }

    let body = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
            other => return Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("expected enum body, got {other:?}")),
        },
        other => return Err(format!("cannot derive for `{other}` items")),
    };
    Ok(Item { name, body })
}

/// Skip leading outer attributes and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) -> Result<(), String> {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return Ok(()),
        }
    }
}

/// Collect field attributes, returning the `with` path if one is present.
fn parse_field_attrs(tokens: &[TokenTree], i: &mut usize) -> Result<Option<String>, String> {
    let mut with = None;
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        let group = match tokens.get(*i + 1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            other => return Err(format!("malformed attribute: {other:?}")),
        };
        let inner: Vec<TokenTree> = group.stream().into_iter().collect();
        if matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde") {
            // Expect serde(with = "path").
            let args = match inner.get(1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    g.stream().into_iter().collect::<Vec<_>>()
                }
                other => return Err(format!("malformed #[serde] attribute: {other:?}")),
            };
            match (args.first(), args.get(1), args.get(2)) {
                (
                    Some(TokenTree::Ident(key)),
                    Some(TokenTree::Punct(eq)),
                    Some(TokenTree::Literal(lit)),
                ) if key.to_string() == "with" && eq.as_char() == '=' => {
                    let raw = lit.to_string();
                    with = Some(raw.trim_matches('"').to_string());
                }
                _ => {
                    return Err(
                        "the vendored serde derive only supports #[serde(with = \"module\")]"
                            .to_string(),
                    )
                }
            }
        }
        *i += 2;
    }
    Ok(with)
}

/// Skip a type expression: everything until a top-level `,` (or the end),
/// tracking `<`/`>` nesting so generic arguments don't split the field.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let with = parse_field_attrs(&tokens, &mut i)?;
        skip_attrs_and_vis(&tokens, &mut i)?;
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        skip_type(&tokens, &mut i);
        i += 1; // consume the `,` (or run past the end)
        fields.push(Field {
            name: Some(name),
            with,
        });
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        // Leading attributes / vis on the field.
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        if i >= tokens.len() {
            break; // trailing comma
        }
        skip_type(&tokens, &mut i);
        i += 1;
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        if i >= tokens.len() {
            break;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        i += 1;
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantBody::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantBody::Named(parse_named_fields(g.stream())?)
            }
            _ => VariantBody::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, body });
    }
    Ok(variants)
}

// ---- codegen ---------------------------------------------------------------

fn ser_field_expr(access: &str, with: &Option<String>) -> String {
    match with {
        None => format!("::serde::Serialize::to_value(&{access})"),
        Some(path) => format!(
            "match {path}::serialize(&{access}, ::serde::value::ValueSerializer) {{ \
                 ::std::result::Result::Ok(v) => v, \
                 ::std::result::Result::Err(e) => match e {{}}, \
             }}"
        ),
    }
}

fn de_field_expr(source: &str, with: &Option<String>) -> String {
    match with {
        None => format!("::serde::Deserialize::from_value({source})?"),
        Some(path) => format!(
            "{path}::deserialize(::serde::value::ValueDeserializer::new(({source}).clone()))?"
        ),
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    let fname = f.name.as_ref().unwrap();
                    let expr = ser_field_expr(&format!("self.{fname}"), &f.with);
                    format!("fields.push(({fname:?}.to_string(), {expr}));")
                })
                .collect();
            format!(
                "let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                     ::std::vec::Vec::new();\
                 {pushes}\
                 ::serde::Value::Object(fields)"
            )
        }
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| ser_field_expr(&format!("self.{k}"), &None))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Body::UnitStruct => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.body {
                        VariantBody::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),"
                        ),
                        VariantBody::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                            let items: Vec<String> =
                                binds.iter().map(|b| ser_field_expr(b, &None)).collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![\
                                     ({vname:?}.to_string(), \
                                      ::serde::Value::Array(::std::vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantBody::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone().unwrap()).collect();
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    let fname = f.name.as_ref().unwrap();
                                    let expr = ser_field_expr(fname, &f.with);
                                    format!("({fname:?}.to_string(), {expr})")
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {} }} => ::serde::Value::Object(::std::vec![\
                                     ({vname:?}.to_string(), \
                                      ::serde::Value::Object(::std::vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_mut, clippy::all)]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    let fname = f.name.as_ref().unwrap();
                    let source = format!("::serde::value::field(obj, {fname:?})?");
                    format!("{fname}: {}", de_field_expr(&source, &f.with))
                })
                .collect();
            format!(
                "let obj = v.as_object().ok_or_else(|| \
                     ::serde::DeError::new(concat!(stringify!({name}), \": expected object\")))?;\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| de_field_expr(&format!("&items[{k}]"), &None))
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| \
                     ::serde::DeError::new(concat!(stringify!({name}), \": expected array\")))?;\
                 if items.len() != {n} {{ return ::std::result::Result::Err(\
                     ::serde::DeError::new(concat!(stringify!({name}), \": wrong arity\"))); }}\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Body::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.body, VariantBody::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!(
                        "::serde::Value::Str(s) if s == {vname:?} => \
                             ::std::result::Result::Ok({name}::{vname}),"
                    )
                })
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter(|v| !matches!(v.body, VariantBody::Unit))
                .map(|v| {
                    let vname = &v.name;
                    match &v.body {
                        VariantBody::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|k| de_field_expr(&format!("&items[{k}]"), &None))
                                .collect();
                            format!(
                                "{vname:?} => {{\
                                     let items = payload.as_array().ok_or_else(|| \
                                         ::serde::DeError::new(\"variant payload: expected array\"))?;\
                                     if items.len() != {n} {{ return ::std::result::Result::Err(\
                                         ::serde::DeError::new(\"variant payload: wrong arity\")); }}\
                                     ::std::result::Result::Ok({name}::{vname}({}))\
                                 }}",
                                items.join(", ")
                            )
                        }
                        VariantBody::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    let fname = f.name.as_ref().unwrap();
                                    let source =
                                        format!("::serde::value::field(obj, {fname:?})?");
                                    format!("{fname}: {}", de_field_expr(&source, &f.with))
                                })
                                .collect();
                            format!(
                                "{vname:?} => {{\
                                     let obj = payload.as_object().ok_or_else(|| \
                                         ::serde::DeError::new(\"variant payload: expected object\"))?;\
                                     ::std::result::Result::Ok({name}::{vname} {{ {} }})\
                                 }}",
                                inits.join(", ")
                            )
                        }
                        VariantBody::Unit => unreachable!(),
                    }
                })
                .collect();
            format!(
                "match v {{\
                     {unit_arms}\
                     ::serde::Value::Object(o) if o.len() == 1 => {{\
                         let (tag, payload) = &o[0];\
                         let _ = payload;\
                         match tag.as_str() {{\
                             {tagged_arms}\
                             other => ::std::result::Result::Err(::serde::DeError::new(\
                                 format!(concat!(\"unknown \", stringify!({name}), \" variant {{}}\"), other))),\
                         }}\
                     }}\
                     other => ::std::result::Result::Err(::serde::DeError::new(\
                         format!(concat!(stringify!({name}), \": unexpected value {{:?}}\"), other))),\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
