//! Offline stand-in for `serde_json`: prints and parses JSON over the
//! vendored serde stub's [`Value`] data model.
//!
//! Numbers round-trip exactly: integers print as integers (full `u64`
//! range), floats print through Rust's shortest-representation formatter.

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};
use std::fmt;

/// Serialization / parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error::new(e.to_string())
    }
}

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any `Deserialize` type.
pub fn from_str<'de, T: Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value).map_err(Error::from)
}

/// Convert a `Serialize` into the generic value tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

// ---- printing --------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(*x, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        // `{:?}` is Rust's shortest round-trip representation; force a
        // decimal point so the value parses back as a float.
        let s = format!("{x:?}");
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/Inf; mirror serde_json's `null`.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parsing ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse JSON text into a [`Value`].
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, got `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, got `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<i64>()
                .map(|n| Value::I64(-n))
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for src in ["null", "true", "false", "0", "123", "-17", "1.5", "\"hi\""] {
            let v = parse(src).unwrap();
            let mut out = String::new();
            write_value(&v, &mut out, None, 0);
            assert_eq!(out, src, "source {src}");
        }
    }

    #[test]
    fn full_u64_range_roundtrips() {
        let v = parse(&u64::MAX.to_string()).unwrap();
        assert_eq!(v, Value::U64(u64::MAX));
    }

    #[test]
    fn float_precision_roundtrips() {
        for x in [0.1, 1.0 / 3.0, 1e300, -2.5e-8, 45.0] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, x, "via {s}");
        }
    }

    #[test]
    fn nested_structures_roundtrip() {
        let src = r#"{"a":[1,2,{"b":"x\ny"}],"c":{"d":null}}"#;
        let v = parse(src).unwrap();
        let mut out = String::new();
        write_value(&v, &mut out, None, 0);
        assert_eq!(out, src);
    }

    #[test]
    fn pretty_output_is_parseable() {
        let v = parse(r#"{"a":[1,2],"b":{"c":true}}"#).unwrap();
        let mut pretty = String::new();
        write_value(&v, &mut pretty, Some(2), 0);
        assert!(pretty.contains('\n'));
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn derive_roundtrip_through_text() {
        let pairs: Vec<(u64, bool)> = vec![(1, true), (u64::MAX, false)];
        let s = to_string(&pairs).unwrap();
        let back: Vec<(u64, bool)> = from_str(&s).unwrap();
        assert_eq!(back, pairs);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("12 34").is_err());
        assert!(from_str::<bool>("7").is_err());
    }
}
